//! The decentralized runtime: real threads exchanging V2I messages.
//!
//! [`crate::engine::Game::run`] simulates the asynchronous protocol inside
//! one thread. This module runs it for real: every OLEV is a worker thread
//! holding its satisfaction function *privately* (the grid never sees it —
//! the paper's key informational constraint), and the grid coordinator talks
//! to workers over channels carrying the [`oes_wpt::v2i`] vocabulary. Per
//! update the grid sends a [`GridMessage::PaymentFunction`] offer — the
//! other OLEVs' aggregate loads `P_{-n,c}`, which define Ψ_n (Eq. 20) — and
//! receives back an [`OlevMessage::PowerRequest`] best response, which it
//! schedules by Lemma IV.1 exactly as the in-process engine does. Both paths
//! must agree; the test suite asserts it.
//!
//! # Fault tolerance
//!
//! Theorem IV.1 proves convergence under bounded asynchrony, so the runtime
//! is built to *survive* the network the paper assumes: every offer rides a
//! sequence-numbered [`V2iFrame`] over a [`LossyLink`], carries a per-offer
//! deadline with a bounded retry budget and exponential backoff, and replies
//! are validated (finite, non-negative, clamped to `P_OLEV`) and applied
//! idempotently — duplicates and late/stale replies are discarded by
//! sequence number. Workers announce themselves with `Hello`, are told their
//! settled price with `PaymentUpdate`, and sign off with `Goodbye`; a worker
//! that crashes (panic payload captured), stalls past its retry budget, or
//! departs mid-game is evicted gracefully: its schedule row is zeroed and
//! the convergence quorum shrinks to the survivors. Everything the network
//! did is tallied in the [`DegradationReport`] attached to the
//! [`Outcome`].
//!
//! Injected faults come from a seeded [`FaultPlan`], and the coordinator
//! *virtualizes* their latency: it knows which transmissions its own plan
//! dropped, delayed past the deadline, or stalled, so it retries those
//! immediately instead of sleeping through the timeout. With a reachable
//! worker behind every awaited reply, a fault-injected run is as fast as a
//! clean one, and — for the single-outstanding-offer runtime
//! ([`DistributedGame`]) — bit-deterministic under the plan's seed: the same
//! seed yields the same trajectory, the same report, the same equilibrium.
//! (With `window > 1`, reply *arrival order* across OLEVs depends on thread
//! scheduling — the equilibrium is still the same, per Theorem IV.1.)

use std::collections::{BTreeMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use oes_telemetry::{Clock, MonotonicClock, Telemetry};
use oes_units::{Kilowatts, MetersPerSecond, OlevId, StateOfCharge};
use oes_wpt::v2i::{GridMessage, OlevMessage, V2iFrame};
use parking_lot::Mutex;

use crate::best_response::best_response;
use crate::engine::{Game, Outcome, Snapshot};
use crate::error::GameError;
use crate::faults::{DegradationReport, Eviction, EvictionReason, FaultPlan, LossyLink};
use crate::payment::Scheduler;
use crate::pricing::SectionCost;
use crate::satisfaction::Satisfaction;
use crate::state::ScheduleState;

/// Consecutive invalid replies from one OLEV before it is evicted as
/// misbehaving (fault-injected runs only).
const MAX_INVALID_REPLIES: u32 = 4;

/// Shared knobs of the hardened coordinator.
#[derive(Debug, Clone)]
struct RuntimeConfig {
    plan: Option<FaultPlan>,
    offer_timeout: Duration,
    retry_budget: u32,
    clock: Arc<dyn Clock>,
    telemetry: Telemetry,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            plan: None,
            offer_timeout: Duration::from_millis(250),
            retry_budget: 6,
            clock: Arc::new(MonotonicClock::new()),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Runs a [`Game`] on the thread-per-OLEV runtime with one outstanding
/// offer at a time.
///
/// # Examples
///
/// ```
/// use oes_game::{DistributedGame, GameBuilder};
/// use oes_units::Kilowatts;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut game = GameBuilder::new()
///     .sections(4, Kilowatts::new(60.0))
///     .olevs(3, Kilowatts::new(40.0))
///     .build()?;
/// let outcome = DistributedGame::new(&mut game).run(500)?;
/// assert!(outcome.converged());
/// assert!(outcome.degradation().is_clean());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DistributedGame<'g> {
    game: &'g mut Game,
    config: RuntimeConfig,
}

impl<'g> DistributedGame<'g> {
    /// Wraps a game for distributed execution.
    pub fn new(game: &'g mut Game) -> Self {
        Self {
            game,
            config: RuntimeConfig::default(),
        }
    }

    /// Injects the given fault plan into every link and worker. Implies
    /// fault-*tolerant* semantics: failures evict OLEVs instead of aborting
    /// the run.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.config.plan = Some(plan);
        self
    }

    /// Sets the base per-offer deadline (doubled per retry, capped at 32×).
    #[must_use]
    pub fn offer_timeout(mut self, timeout: Duration) -> Self {
        self.config.offer_timeout = timeout;
        self
    }

    /// Sets how many times one offer is retransmitted before the OLEV is
    /// given up on.
    #[must_use]
    pub fn retry_budget(mut self, budget: u32) -> Self {
        self.config.retry_budget = budget;
        self
    }

    /// Replaces the deadline clock (default: a monotonic wall clock). A
    /// [`oes_telemetry::ManualClock`] makes offer deadlines fully virtual —
    /// they only expire when the test advances time.
    #[must_use]
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.config.clock = clock;
        self
    }

    /// Attaches a telemetry handle; the coordinator emits `net.*` counters,
    /// per-update `game.*` gauges, and `grid.apply` spans into it.
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Runs round-robin asynchronous best responses across worker threads
    /// until convergence or `max_updates`.
    ///
    /// # Errors
    ///
    /// Without a fault plan: [`GameError::WorkerFailed`] (panic payload
    /// included) if a worker dies, [`GameError::Timeout`] if one stops
    /// answering, [`GameError::InvalidReply`] / [`GameError::ProtocolViolation`]
    /// if one answers garbage. With a fault plan those become evictions, and
    /// only [`GameError::OlevEvicted`] remains — returned when *every* OLEV
    /// has been evicted.
    pub fn run(self, max_updates: usize) -> Result<Outcome, GameError> {
        run_hardened(self.game, 1, &self.config, max_updates)
    }
}

/// A pipelined variant: the grid keeps up to `window` offers outstanding at
/// once, so an OLEV's best response is computed against loads that may be up
/// to `window − 1` updates stale — real V2I latency, modeled. Theorem IV.1's
/// asynchronous convergence claim covers exactly this regime (bounded
/// staleness), and the tests confirm the same optimum is reached.
#[derive(Debug)]
pub struct StaleDistributedGame<'g> {
    game: &'g mut Game,
    window: usize,
    config: RuntimeConfig,
}

impl<'g> StaleDistributedGame<'g> {
    /// Wraps a game; `window` is the number of concurrently outstanding
    /// offers (1 = the fully synchronous protocol).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(game: &'g mut Game, window: usize) -> Self {
        assert!(window > 0, "need at least one outstanding offer");
        Self {
            game,
            window,
            config: RuntimeConfig::default(),
        }
    }

    /// Injects the given fault plan (see [`DistributedGame::with_faults`]).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.config.plan = Some(plan);
        self
    }

    /// Sets the base per-offer deadline (doubled per retry, capped at 32×).
    #[must_use]
    pub fn offer_timeout(mut self, timeout: Duration) -> Self {
        self.config.offer_timeout = timeout;
        self
    }

    /// Sets how many times one offer is retransmitted before the OLEV is
    /// given up on.
    #[must_use]
    pub fn retry_budget(mut self, budget: u32) -> Self {
        self.config.retry_budget = budget;
        self
    }

    /// Replaces the deadline clock (see [`DistributedGame::clock`]).
    #[must_use]
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.config.clock = clock;
        self
    }

    /// Attaches a telemetry handle (see [`DistributedGame::telemetry`]).
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Runs round-robin best responses with pipelined (stale) offers.
    ///
    /// # Errors
    ///
    /// As for [`DistributedGame::run`].
    pub fn run(self, max_updates: usize) -> Result<Outcome, GameError> {
        run_hardened(self.game, self.window, &self.config, max_updates)
    }
}

/// One in-flight transmission the coordinator still expects an answer to.
#[derive(Debug)]
struct PendingOffer {
    olev: usize,
    /// Retransmission count of the logical offer this transmission serves.
    attempt: u32,
    /// Invalid replies received for the logical offer so far.
    invalids: u32,
    /// Expiry instant in coordinator-clock microseconds.
    deadline_us: u64,
}

/// What processing one protocol event amounted to.
enum Event {
    /// A reply was accepted and applied; convergence bookkeeping ran.
    Applied,
    /// Something else happened (retry, eviction, passive bookkeeping).
    Housekeeping,
}

enum DispatchResult {
    /// The offer is in flight with a live deadline.
    InFlight,
    /// The OLEV was evicted while trying to reach it.
    Evicted,
}

struct Coordinator<'a> {
    cost: SectionCost,
    scheduler: Scheduler,
    caps: &'a [f64],
    p_max: &'a [f64],
    tolerance: f64,
    satisfactions: &'a [Box<dyn Satisfaction>],
    state: &'a mut ScheduleState,
    /// Reusable `P_{-n,c}` buffer for dispatch/apply, so the per-offer and
    /// per-apply paths do not allocate.
    scratch_loads: Vec<f64>,
    links: Vec<Option<LossyLink<'a, V2iFrame<GridMessage>>>>,
    reply_rx: Receiver<V2iFrame<OlevMessage>>,
    board: &'a [Mutex<Option<String>>],
    plan: Option<&'a FaultPlan>,
    offer_timeout: Duration,
    retry_budget: u32,
    clock: &'a Arc<dyn Clock>,
    telemetry: &'a Telemetry,
    window: usize,

    alive: Vec<bool>,
    live: usize,
    last_evicted: usize,
    pending: BTreeMap<u64, PendingOffer>,
    abandoned: HashSet<u64>,
    accepted: HashSet<u64>,
    next_seq: u64,
    cursor: usize,
    issued: usize,
    updates: usize,
    calm_streak: usize,
    converged: bool,
    trajectory: Vec<Snapshot>,
    report: DegradationReport,
}

impl<'a> Coordinator<'a> {
    fn n_olevs(&self) -> usize {
        self.p_max.len()
    }

    /// The deadline for transmission `attempt` (exponential backoff).
    fn timeout_for(&self, attempt: u32) -> Duration {
        self.offer_timeout * 2u32.pow(attempt.min(5))
    }

    /// [`Self::timeout_for`] in clock microseconds.
    fn timeout_for_us(&self, attempt: u32) -> u64 {
        u64::try_from(self.timeout_for(attempt).as_micros()).unwrap_or(u64::MAX)
    }

    /// Reads the panic payload a worker may have left behind. Used right
    /// after observing a closed channel or an expired deadline; the short
    /// grace loop lets a thread that is still unwinding finish writing.
    fn harvest_panic(&self, olev: usize) -> Option<String> {
        for _ in 0..200 {
            if let Some(msg) = self.board[olev].lock().clone() {
                return Some(msg);
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        None
    }

    fn worker_failed(&self, olev: usize) -> GameError {
        match self.harvest_panic(olev) {
            Some(msg) => GameError::WorkerFailed(format!("olev {olev} panicked: {msg}")),
            None => GameError::WorkerFailed(format!("olev {olev} closed its offer channel")),
        }
    }

    /// Evicts an OLEV: zeroes its row, abandons its in-flight offers,
    /// closes its link (the worker will say `Goodbye`), and shrinks the
    /// convergence quorum.
    fn evict(&mut self, olev: usize, reason: EvictionReason) {
        if !self.alive[olev] {
            return;
        }
        self.alive[olev] = false;
        self.live -= 1;
        self.last_evicted = olev;
        self.state.apply_row(
            OlevId(olev),
            &vec![0.0; self.caps.len()],
            self.satisfactions,
            &self.cost,
            self.caps,
        );
        let in_flight: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.olev == olev)
            .map(|(s, _)| *s)
            .collect();
        for seq in in_flight {
            self.pending.remove(&seq);
            self.abandoned.insert(seq);
        }
        self.links[olev] = None;
        self.calm_streak = 0;
        self.telemetry.counter("net.eviction", olev as i64, 1);
        self.report.evictions.push(Eviction {
            olev,
            at_update: self.updates,
            reason,
        });
    }

    /// The next live OLEV in round-robin order. Precondition: `live > 0`.
    fn next_live(&mut self) -> usize {
        while !self.alive[self.cursor] {
            self.cursor = (self.cursor + 1) % self.n_olevs();
        }
        let pick = self.cursor;
        self.cursor = (self.cursor + 1) % self.n_olevs();
        pick
    }

    /// Transmits (and, on known-futile verdicts, immediately retransmits) a
    /// logical offer to `olev` until it is genuinely in flight, the retry
    /// budget runs out, or the worker proves dead.
    ///
    /// Drops, deadline-exceeding delays, and stalls are all known to the
    /// coordinator at send time (it injected them), so their timeouts are
    /// *virtual*: counted, never waited for.
    fn dispatch(
        &mut self,
        olev: usize,
        start_attempt: u32,
        invalids: u32,
    ) -> Result<DispatchResult, GameError> {
        let mut attempt = start_attempt;
        loop {
            if attempt > self.retry_budget {
                return if self.plan.is_some() {
                    let reason = match self.harvest_panic(olev) {
                        Some(msg) => EvictionReason::Crashed(msg),
                        None => EvictionReason::Unresponsive,
                    };
                    self.evict(olev, reason);
                    Ok(DispatchResult::Evicted)
                } else {
                    Err(self.timeout_error(olev))
                };
            }
            if attempt > 0 {
                self.report.retries += 1;
                self.telemetry.counter("net.retry", olev as i64, 1);
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.state
                .loads_excluding_into(OlevId(olev), &mut self.scratch_loads);
            let loads_excl: Vec<Kilowatts> = self
                .scratch_loads
                .iter()
                .copied()
                .map(Kilowatts::new)
                .collect();
            let frame = V2iFrame::new(
                seq,
                GridMessage::PaymentFunction {
                    id: OlevId(olev),
                    loads_excl,
                },
            );
            self.report.offers_sent += 1;
            self.telemetry.counter("net.offer", olev as i64, 1);
            let link = self.links[olev].as_ref().expect("live OLEV has a link");
            let verdict = match link.send(seq, attempt, frame) {
                Ok(verdict) => verdict,
                Err(_) => {
                    // The worker is gone. With fault tolerance on, that is
                    // an eviction; without, it aborts the run.
                    return if self.plan.is_some() {
                        let reason = match self.harvest_panic(olev) {
                            Some(msg) => EvictionReason::Crashed(msg),
                            None => EvictionReason::Unresponsive,
                        };
                        self.evict(olev, reason);
                        Ok(DispatchResult::Evicted)
                    } else {
                        Err(self.worker_failed(olev))
                    };
                }
            };
            if verdict.dropped {
                self.report.drops += 1;
                self.report.timeouts += 1;
                self.telemetry.counter("net.drop", olev as i64, 1);
                self.telemetry.counter("net.timeout", olev as i64, 1);
                attempt += 1;
                continue;
            }
            let stalled = self.plan.is_some_and(|p| p.worker_stalls(olev, seq));
            if stalled {
                // The worker will swallow this frame; no reply is coming.
                self.report.timeouts += 1;
                self.telemetry.counter("net.stall", olev as i64, 1);
                self.telemetry.counter("net.timeout", olev as i64, 1);
                attempt += 1;
                continue;
            }
            if u128::from(verdict.delay_ms) > self.timeout_for(attempt).as_millis() {
                // The frame will arrive after we stop listening for it: the
                // reply is already stale by construction.
                self.abandoned.insert(seq);
                self.report.timeouts += 1;
                self.telemetry.counter("net.timeout", olev as i64, 1);
                attempt += 1;
                continue;
            }
            self.pending.insert(
                seq,
                PendingOffer {
                    olev,
                    attempt,
                    invalids,
                    deadline_us: self
                        .clock
                        .now_micros()
                        .saturating_add(self.timeout_for_us(attempt)),
                },
            );
            return Ok(DispatchResult::InFlight);
        }
    }

    fn timeout_error(&self, olev: usize) -> GameError {
        let waited: u128 = (0..=self.retry_budget)
            .map(|a| self.timeout_for(a).as_millis())
            .sum();
        GameError::Timeout {
            olev,
            waited_ms: waited.min(u128::from(u64::MAX)) as u64,
        }
    }

    /// Handles every pending offer whose deadline has passed: retry, evict,
    /// or (without fault tolerance) abort.
    fn handle_expirations(&mut self) -> Result<(), GameError> {
        let now_us = self.clock.now_micros();
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline_us <= now_us)
            .map(|(s, _)| *s)
            .collect();
        for seq in expired {
            let p = self.pending.remove(&seq).expect("collected above");
            self.abandoned.insert(seq);
            self.report.timeouts += 1;
            self.telemetry.counter("net.timeout", p.olev as i64, 1);
            if let Some(msg) = self.board[p.olev].lock().clone() {
                // The worker died mid-offer; no amount of retrying helps.
                if self.plan.is_some() {
                    self.evict(p.olev, EvictionReason::Crashed(msg));
                    continue;
                }
                return Err(GameError::WorkerFailed(format!(
                    "olev {} panicked: {msg}",
                    p.olev
                )));
            }
            self.dispatch(p.olev, p.attempt + 1, p.invalids)?;
        }
        Ok(())
    }

    /// Validates a reply total against the "no trust in the worker" rules.
    fn validate(total: f64) -> Result<(), String> {
        if !total.is_finite() {
            return Err(format!("total {total} is not finite"));
        }
        if total < 0.0 {
            return Err(format!("total {total} is negative"));
        }
        Ok(())
    }

    /// Applies an accepted best response exactly as the in-process engine
    /// does: cost-minimal allocation against the fresh loads, then the
    /// convergence bookkeeping of Theorem IV.1.
    fn apply(&mut self, olev: usize, seq: u64, total: f64) {
        let span = self.telemetry.span("grid.apply", olev as i64);
        let id = OlevId(olev);
        self.state.loads_excluding_into(id, &mut self.scratch_loads);
        let allocation = self
            .scheduler
            .allocate(&self.cost, self.caps, &self.scratch_loads, total);
        let before = self.state.schedule().olev_total(id);
        self.state.apply_row(
            id,
            &allocation.shares,
            self.satisfactions,
            &self.cost,
            self.caps,
        );
        let change = (total - before).abs();
        self.updates += 1;
        let snapshot = Snapshot {
            update: self.updates,
            congestion: self.state.schedule().system_congestion(self.caps),
            welfare: self.state.welfare(),
            change,
        };
        drop(span);
        let key = self.updates as i64;
        self.telemetry.gauge("game.welfare", key, snapshot.welfare);
        self.telemetry
            .gauge("game.congestion", key, snapshot.congestion);
        self.telemetry.gauge("game.change", key, snapshot.change);
        self.trajectory.push(snapshot);
        if change < self.tolerance {
            self.calm_streak += 1;
        } else {
            self.calm_streak = 0;
        }
        let extra = if self.window == 1 { 0 } else { self.window };
        if self.calm_streak >= self.live + extra {
            self.converged = true;
            self.telemetry.counter("game.converged", -1, 1);
        }
        // Close the loop: tell the OLEV what it got and at what marginal
        // price. Fire-and-forget — a lost PaymentUpdate costs nothing.
        if let Some(link) = &self.links[olev] {
            let allocated = Kilowatts::new(self.state.schedule().olev_total(id));
            let update = GridMessage::PaymentUpdate {
                id,
                marginal_price: allocation.marginal,
                allocated,
            };
            let _ = link.send(seq, 0, V2iFrame::new(seq, update));
        }
    }

    /// Classifies and processes one incoming frame.
    fn process(&mut self, frame: V2iFrame<OlevMessage>) -> Result<Event, GameError> {
        let (id, total) = match frame.payload {
            OlevMessage::Hello { .. } => {
                self.report.hellos += 1;
                return Ok(Event::Housekeeping);
            }
            OlevMessage::Goodbye { .. } => {
                self.report.goodbyes += 1;
                return Ok(Event::Housekeeping);
            }
            OlevMessage::PowerRequest { id, total } => (id, total.value()),
        };
        let seq = frame.seq;
        if self.accepted.contains(&seq) {
            self.report.duplicates += 1;
            self.telemetry.counter("net.duplicate", id.0 as i64, 1);
            return Ok(Event::Housekeeping);
        }
        if self.abandoned.contains(&seq) {
            self.report.stale += 1;
            self.telemetry.counter("net.stale", id.0 as i64, 1);
            return Ok(Event::Housekeeping);
        }
        let Some(p) = self.pending.get(&seq) else {
            // A reply to an offer that was never outstanding. Without fault
            // injection this is a protocol violation; with it, the network
            // could have manufactured it, so it is discarded as stale.
            if self.plan.is_none() {
                let expected = self.pending.values().next().map_or(usize::MAX, |p| p.olev);
                return Err(GameError::ProtocolViolation {
                    expected,
                    got: id.0,
                });
            }
            self.report.stale += 1;
            return Ok(Event::Housekeeping);
        };
        let (olev, attempt, invalids) = (p.olev, p.attempt, p.invalids);
        let fault = if id.0 != olev {
            // The reply answers this offer but claims another identity —
            // applying it would corrupt OLEV `id`'s row.
            if self.plan.is_none() {
                return Err(GameError::ProtocolViolation {
                    expected: olev,
                    got: id.0,
                });
            }
            Some(format!(
                "reply claims OLEV {} for OLEV {olev}'s offer",
                id.0
            ))
        } else {
            Self::validate(total).err()
        };
        if let Some(reason) = fault {
            self.pending.remove(&seq);
            self.abandoned.insert(seq);
            self.report.invalid_replies += 1;
            self.telemetry.counter("net.invalid_reply", olev as i64, 1);
            if self.plan.is_none() {
                return Err(GameError::InvalidReply { olev, reason });
            }
            if invalids + 1 >= MAX_INVALID_REPLIES {
                self.evict(olev, EvictionReason::Misbehaving);
            } else {
                self.dispatch(olev, attempt + 1, invalids + 1)?;
            }
            return Ok(Event::Housekeeping);
        }
        // Accept. Clamp an over-ask to the OLEV's physical bound P_OLEV
        // (Eq. 2) — the grid never schedules more than the vehicle can take.
        let bound = self.p_max[olev];
        let total = if total > bound {
            if total > bound + 1e-9 {
                self.report.clamped_replies += 1;
                self.telemetry.counter("net.clamped_reply", olev as i64, 1);
            }
            bound
        } else {
            total
        };
        self.pending.remove(&seq);
        self.accepted.insert(seq);
        self.apply(olev, seq, total);
        Ok(Event::Applied)
    }

    /// Waits for and processes protocol events until one reply is applied,
    /// a retry/eviction changes the in-flight picture, or the run dies.
    fn pump(&mut self) -> Result<(), GameError> {
        loop {
            let Some(nearest) = self.pending.values().map(|p| p.deadline_us).min() else {
                return Ok(());
            };
            let wait = Duration::from_micros(nearest.saturating_sub(self.clock.now_micros()));
            match self.reply_rx.recv_timeout(wait) {
                Ok(frame) => match self.process(frame)? {
                    Event::Applied => return Ok(()),
                    Event::Housekeeping => {
                        if self.pending.is_empty() {
                            return Ok(());
                        }
                    }
                },
                Err(RecvTimeoutError::Timeout) => {
                    self.handle_expirations()?;
                    if self.pending.is_empty() {
                        return Ok(());
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let mut failures = Vec::new();
                    for olev in 0..self.n_olevs() {
                        if let Some(msg) = self.board[olev].lock().clone() {
                            failures.push(format!("olev {olev} panicked: {msg}"));
                        }
                    }
                    if failures.is_empty() {
                        failures.push("every worker closed its reply channel".to_owned());
                    }
                    return Err(GameError::WorkerFailed(failures.join("; ")));
                }
            }
        }
    }

    /// The coordinator main loop.
    fn run(&mut self, max_updates: usize) -> Result<(), GameError> {
        loop {
            if let Some(plan) = self.plan {
                for olev in plan.departures_at(self.updates) {
                    if olev < self.n_olevs() && self.alive[olev] {
                        self.evict(olev, EvictionReason::Departed);
                    }
                }
            }
            if self.live == 0 {
                return Err(GameError::OlevEvicted(self.last_evicted));
            }
            if self.converged || self.updates >= max_updates {
                return Ok(());
            }
            let window = self.window.min(self.live);
            while self.pending.len() < window && self.issued < max_updates && self.live > 0 {
                let olev = self.next_live();
                if let DispatchResult::InFlight = self.dispatch(olev, 0, 0)? {
                    self.issued += 1;
                }
            }
            if self.pending.is_empty() {
                // Nothing in flight and nothing left to issue (all evicted
                // or the issue budget is spent): the run is over.
                if self.live == 0 {
                    return Err(GameError::OlevEvicted(self.last_evicted));
                }
                return Ok(());
            }
            self.pump()?;
        }
    }

    /// Closes every link and drains the reply channel to completion, so the
    /// counters are totals over the whole run rather than a race with the
    /// workers' last words.
    fn finish(&mut self) {
        let leftover: Vec<u64> = self.pending.keys().copied().collect();
        for seq in leftover {
            self.pending.remove(&seq);
            self.abandoned.insert(seq);
        }
        for link in &mut self.links {
            *link = None;
        }
        while let Ok(frame) = self.reply_rx.recv() {
            match frame.payload {
                OlevMessage::Hello { .. } => self.report.hellos += 1,
                OlevMessage::Goodbye { .. } => self.report.goodbyes += 1,
                OlevMessage::PowerRequest { .. } => {
                    if self.accepted.contains(&frame.seq) {
                        self.report.duplicates += 1;
                    } else {
                        self.report.stale += 1;
                    }
                }
            }
        }
        // Hello/Goodbye frames arrive racily from worker threads, so they
        // are journaled only here, as run-level totals after the drain —
        // never inline, which would break byte-identical same-seed journals.
        self.telemetry
            .counter("net.hello", -1, self.report.hellos as u64);
        self.telemetry
            .counter("net.goodbye", -1, self.report.goodbyes as u64);
        self.telemetry
            .gauge("game.updates", -1, self.updates as f64);
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        (*msg).to_owned()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The worker side of the protocol: a vehicle holding its satisfaction
/// privately, answering payment-function offers with best responses.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    n: usize,
    offer_rx: &Receiver<V2iFrame<GridMessage>>,
    reply_tx: &Sender<V2iFrame<OlevMessage>>,
    sat: &dyn Satisfaction,
    cost: &SectionCost,
    caps: &[f64],
    p_max_n: f64,
    scheduler: Scheduler,
    plan: Option<&FaultPlan>,
) {
    let crash_at = plan.and_then(|p| p.crash_point(n));
    let mut replies_sent = 0usize;
    while let Ok(frame) = offer_rx.recv() {
        let GridMessage::PaymentFunction { id: _, loads_excl } = frame.payload else {
            // LaneInfo / PaymentUpdate are informational on this side.
            continue;
        };
        if let Some(k) = crash_at {
            if replies_sent >= k {
                panic!("fault plan crashed OLEV {n} after {replies_sent} replies");
            }
        }
        if plan.is_some_and(|p| p.worker_stalls(n, frame.seq)) {
            continue;
        }
        let loads: Vec<f64> = loads_excl.iter().map(|kw| kw.value()).collect();
        let br = best_response(sat, cost, caps, &loads, p_max_n, scheduler);
        let total = plan
            .and_then(|p| p.corrupted_total(n, frame.seq))
            .unwrap_or(br.total);
        let reply = OlevMessage::PowerRequest {
            id: OlevId(n),
            total: Kilowatts::new(total),
        };
        if reply_tx.send(V2iFrame::new(frame.seq, reply)).is_err() {
            break;
        }
        replies_sent += 1;
    }
}

/// The unified hardened runtime behind both [`DistributedGame`] and
/// [`StaleDistributedGame`].
fn run_hardened(
    game: &mut Game,
    window: usize,
    config: &RuntimeConfig,
    max_updates: usize,
) -> Result<Outcome, GameError> {
    let n_olevs = game.olev_count();
    let window = window.min(n_olevs);
    let cost = game.cost;
    let scheduler = game.scheduler;
    let caps = game.caps.clone();
    let p_max = game.p_max.clone();
    let tolerance = game.tolerance;
    let plan = config.plan.as_ref();

    let (reply_tx, reply_rx): (
        Sender<V2iFrame<OlevMessage>>,
        Receiver<V2iFrame<OlevMessage>>,
    ) = unbounded();
    let mut offer_txs: Vec<Sender<V2iFrame<GridMessage>>> = Vec::with_capacity(n_olevs);
    let mut offer_rxs: Vec<Receiver<V2iFrame<GridMessage>>> = Vec::with_capacity(n_olevs);
    for _ in 0..n_olevs {
        let (tx, rx) = unbounded();
        offer_txs.push(tx);
        offer_rxs.push(rx);
    }
    // One slot per worker for a captured panic payload, shared by borrow.
    let board: Vec<Mutex<Option<String>>> = (0..n_olevs).map(|_| Mutex::new(None)).collect();

    let satisfactions = &game.satisfactions;
    let state = &mut game.state;
    let caps_ref = &caps;
    let board_ref = &board;

    std::thread::scope(|scope| -> Result<Outcome, GameError> {
        for (n, offer_rx) in offer_rxs.into_iter().enumerate() {
            let reply_tx = reply_tx.clone();
            let sat = satisfactions[n].as_ref();
            let p_max_n = p_max[n];
            scope.spawn(move || {
                // The paper's bring-up handshake. The runtime is detached
                // from the traffic substrate, so kinematics are nominal.
                let hello = OlevMessage::Hello {
                    id: OlevId(n),
                    velocity: MetersPerSecond::new(0.0),
                    soc: StateOfCharge::EMPTY,
                    soc_required: StateOfCharge::FULL,
                };
                let _ = reply_tx.send(V2iFrame::new(0, hello));
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    worker_loop(
                        n, &offer_rx, &reply_tx, sat, &cost, caps_ref, p_max_n, scheduler, plan,
                    );
                }));
                match outcome {
                    Ok(()) => {
                        let _ =
                            reply_tx.send(V2iFrame::new(0, OlevMessage::Goodbye { id: OlevId(n) }));
                    }
                    Err(payload) => {
                        *board_ref[n].lock() = Some(panic_message(payload));
                    }
                }
            });
        }
        drop(reply_tx);

        let mut coordinator = Coordinator {
            cost,
            scheduler,
            caps: caps_ref,
            p_max: &p_max,
            tolerance,
            satisfactions,
            state,
            scratch_loads: Vec::with_capacity(caps_ref.len()),
            links: offer_txs
                .into_iter()
                .enumerate()
                .map(|(n, tx)| Some(LossyLink::new(tx, n, plan)))
                .collect(),
            reply_rx,
            board: board_ref,
            plan,
            offer_timeout: config.offer_timeout,
            retry_budget: config.retry_budget,
            clock: &config.clock,
            telemetry: &config.telemetry,
            window,
            alive: vec![true; n_olevs],
            live: n_olevs,
            last_evicted: 0,
            pending: BTreeMap::new(),
            abandoned: HashSet::new(),
            accepted: HashSet::new(),
            next_seq: 1,
            cursor: 0,
            issued: 0,
            updates: 0,
            calm_streak: 0,
            converged: false,
            trajectory: Vec::new(),
            report: DegradationReport::default(),
        };
        let result = coordinator.run(max_updates);
        coordinator.finish();
        let outcome = Outcome {
            converged: coordinator.converged,
            updates: coordinator.updates,
            trajectory: std::mem::take(&mut coordinator.trajectory),
            degradation: std::mem::take(&mut coordinator.report),
            end_welfare: coordinator.state.welfare(),
        };
        result.map(|()| outcome)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GameBuilder;
    use crate::engine::UpdateOrder;
    use oes_units::Kilowatts;

    fn build() -> Game {
        GameBuilder::new()
            .sections(6, Kilowatts::new(60.0))
            .olevs(4, Kilowatts::new(50.0))
            .build()
            .unwrap()
    }

    #[test]
    fn distributed_converges() {
        let mut g = build();
        let out = DistributedGame::new(&mut g).run(1000).unwrap();
        assert!(out.converged());
        assert!(out.updates() < 1000);
    }

    #[test]
    fn distributed_matches_in_process_engine() {
        // Same protocol, different runtime ⇒ same equilibrium.
        let mut a = build();
        let mut b = build();
        a.run(UpdateOrder::RoundRobin, 2000).unwrap();
        DistributedGame::new(&mut b).run(2000).unwrap();
        assert!((a.welfare() - b.welfare()).abs() < 1e-9);
        for (la, lb) in a.section_loads().iter().zip(b.section_loads()) {
            assert!((la - lb).abs() < 1e-9);
        }
    }

    #[test]
    fn clean_run_reports_full_handshake_and_no_degradation() {
        let mut g = build();
        let out = DistributedGame::new(&mut g).run(1000).unwrap();
        let report = out.degradation();
        assert!(report.is_clean(), "clean run degraded: {report:?}");
        assert_eq!(report.hellos, 4);
        assert_eq!(report.goodbyes, 4);
        assert_eq!(report.offers_sent, out.updates());
    }

    #[test]
    fn stale_offers_still_converge_to_the_same_optimum() {
        // Bounded staleness (Theorem IV.1's asynchronous regime): windows of
        // 1, 2, and 4 outstanding offers must all land on the synchronous
        // optimum.
        let mut reference = build();
        reference.run(UpdateOrder::RoundRobin, 2000).unwrap();
        for window in [1usize, 2, 4] {
            let mut g = build();
            let out = StaleDistributedGame::new(&mut g, window).run(5000).unwrap();
            assert!(out.converged(), "window {window} did not converge");
            assert!(
                (g.welfare() - reference.welfare()).abs() < 1e-6,
                "window {window}: welfare {} vs {}",
                g.welfare(),
                reference.welfare()
            );
        }
    }

    #[test]
    fn staleness_costs_updates_but_not_quality() {
        let mut sync_game = build();
        let sync_updates = DistributedGame::new(&mut sync_game)
            .run(5000)
            .unwrap()
            .updates();
        let mut stale_game = build();
        let stale_out = StaleDistributedGame::new(&mut stale_game, 4)
            .run(5000)
            .unwrap();
        assert!(stale_out.converged());
        // Stale information can only slow the protocol down, never corrupt
        // the fixed point.
        assert!(stale_out.updates() + 8 >= sync_updates);
    }

    #[test]
    #[should_panic(expected = "at least one outstanding offer")]
    fn zero_window_panics() {
        let mut g = build();
        let _ = StaleDistributedGame::new(&mut g, 0);
    }

    #[test]
    fn distributed_with_heterogeneous_olevs() {
        let mut g = GameBuilder::new()
            .sections(5, Kilowatts::new(40.0))
            .olevs_weighted(2, Kilowatts::new(30.0), 2.0)
            .olevs_weighted(3, Kilowatts::new(60.0), 0.7)
            .build()
            .unwrap();
        let out = DistributedGame::new(&mut g).run(2000).unwrap();
        assert!(out.converged());
        // Eager OLEVs (higher weight) take more power.
        let p0 = g.schedule().olev_total(oes_units::OlevId(0));
        let p4 = g.schedule().olev_total(oes_units::OlevId(4));
        assert!(p0 > p4, "eager {p0} vs lukewarm {p4}");
    }

    #[test]
    fn frozen_manual_clock_never_expires_deadlines() {
        // With a frozen virtual clock every deadline sits in the future
        // forever; a clean run must still converge purely on replies, with
        // zero timeouts — which proves the deadline logic runs on the
        // injected clock, not the wall.
        use oes_telemetry::ManualClock;
        let mut g = build();
        let out = DistributedGame::new(&mut g)
            .clock(Arc::new(ManualClock::new()))
            .run(1000)
            .unwrap();
        assert!(out.converged());
        assert_eq!(out.degradation().timeouts, 0);
        assert!(out.degradation().is_clean());
    }

    #[test]
    fn telemetry_counters_match_the_degradation_report() {
        use oes_telemetry::{RingBufferRecorder, Telemetry};
        let mut plain = build();
        let baseline = DistributedGame::new(&mut plain).run(1000).unwrap();

        let ring = Arc::new(RingBufferRecorder::new(1 << 14));
        let mut g = build();
        let out = DistributedGame::new(&mut g)
            .telemetry(Telemetry::new(ring.clone()))
            .run(1000)
            .unwrap();

        // Recorder neutrality: attaching a sink changes no game outcome.
        assert_eq!(out.trajectory, baseline.trajectory);
        assert_eq!(g.schedule(), plain.schedule());

        let report = out.degradation();
        assert_eq!(ring.counter_total("net.offer") as usize, report.offers_sent);
        assert_eq!(ring.counter_total("net.hello") as usize, report.hellos);
        assert_eq!(ring.counter_total("net.goodbye") as usize, report.goodbyes);
        assert_eq!(ring.counter_total("game.converged"), 1);
        assert_eq!(ring.last_gauge("game.welfare"), Some(out.final_welfare()));
        assert_eq!(ring.last_gauge("game.updates"), Some(out.updates() as f64));
    }

    #[test]
    fn worker_panic_payload_reaches_the_error() {
        // A fault-plan crash without fault *tolerance* (no plan on the
        // runtime would mean no crash, so the crash is injected but the
        // retry budget is zeroed to force the abort path)... simplest
        // honest setup: tolerant runtime, then check the reason string.
        let mut g = build();
        let out = DistributedGame::new(&mut g)
            .with_faults(FaultPlan::new(3).crash(1, 2))
            .offer_timeout(Duration::from_millis(20))
            .retry_budget(2)
            .run(2000)
            .unwrap();
        let evicted: Vec<_> = out.degradation().evictions.iter().collect();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].olev, 1);
        match &evicted[0].reason {
            EvictionReason::Crashed(msg) => {
                assert!(
                    msg.contains("fault plan crashed OLEV 1"),
                    "payload lost: {msg}"
                );
            }
            other => panic!("expected a crash eviction, got {other:?}"),
        }
    }
}
