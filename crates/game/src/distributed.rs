//! The decentralized runtime: real threads exchanging V2I-style messages.
//!
//! [`crate::engine::Game::run`] simulates the asynchronous protocol inside
//! one thread. This module runs it for real: every OLEV is a worker thread
//! holding its satisfaction function *privately* (the grid never sees it —
//! the paper's key informational constraint), and the grid coordinator talks
//! to workers over channels. Per update the grid sends the data defining the
//! OLEV's payment function — the other OLEVs' aggregate loads `P_{-n,c}` —
//! and receives back the best-response total request, which it schedules by
//! Lemma IV.1 exactly as the in-process engine does. Both paths must agree;
//! the test suite asserts it.

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::best_response::best_response;
use crate::engine::{Game, Outcome, Snapshot};
use crate::error::GameError;

/// What the grid sends an OLEV: everything Ψ_n depends on.
#[derive(Debug, Clone)]
struct Offer {
    loads_excl: Vec<f64>,
}

/// What the OLEV returns: its best-response total request (Eq. 21).
#[derive(Debug, Clone, Copy)]
struct Reply {
    olev: usize,
    total: f64,
}

/// Runs a [`Game`] on the thread-per-OLEV runtime.
///
/// # Examples
///
/// ```
/// use oes_game::{DistributedGame, GameBuilder};
/// use oes_units::Kilowatts;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut game = GameBuilder::new()
///     .sections(4, Kilowatts::new(60.0))
///     .olevs(3, Kilowatts::new(40.0))
///     .build()?;
/// let outcome = DistributedGame::new(&mut game).run(500)?;
/// assert!(outcome.converged());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DistributedGame<'g> {
    game: &'g mut Game,
}

impl<'g> DistributedGame<'g> {
    /// Wraps a game for distributed execution.
    pub fn new(game: &'g mut Game) -> Self {
        Self { game }
    }

    /// Runs round-robin asynchronous best responses across worker threads
    /// until convergence or `max_updates`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::WorkerFailed`] if a worker thread dies.
    pub fn run(self, max_updates: usize) -> Result<Outcome, GameError> {
        let game = self.game;
        let n_olevs = game.olev_count();
        let cost = game.cost;
        let scheduler = game.scheduler;
        let caps = game.caps.clone();
        let p_max = game.p_max.clone();
        let tolerance = game.tolerance;

        let (reply_tx, reply_rx): (Sender<Reply>, Receiver<Reply>) = unbounded();
        let mut offer_txs: Vec<Sender<Offer>> = Vec::with_capacity(n_olevs);
        let mut offer_rxs: Vec<Receiver<Offer>> = Vec::with_capacity(n_olevs);
        for _ in 0..n_olevs {
            let (tx, rx) = unbounded();
            offer_txs.push(tx);
            offer_rxs.push(rx);
        }

        let satisfactions = &game.satisfactions;
        let schedule = &mut game.schedule;
        let caps_ref = &caps;

        std::thread::scope(|scope| -> Result<Outcome, GameError> {
            // Workers: privately-held satisfaction, public price signal in.
            for (n, offer_rx) in offer_rxs.into_iter().enumerate() {
                let reply_tx = reply_tx.clone();
                let sat = satisfactions[n].as_ref();
                let p_max_n = p_max[n];
                scope.spawn(move || {
                    while let Ok(offer) = offer_rx.recv() {
                        let br = best_response(
                            sat,
                            &cost,
                            caps_ref,
                            &offer.loads_excl,
                            p_max_n,
                            scheduler,
                        );
                        if reply_tx.send(Reply { olev: n, total: br.total }).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(reply_tx);

            let mut trajectory = Vec::new();
            let mut calm_streak = 0usize;
            let mut updates = 0usize;
            let mut converged = false;
            while updates < max_updates {
                let n = updates % n_olevs;
                let loads_excl = schedule.loads_excluding(oes_units::OlevId(n));
                offer_txs[n]
                    .send(Offer { loads_excl: loads_excl.clone() })
                    .map_err(|e| GameError::WorkerFailed(e.to_string()))?;
                let reply = reply_rx
                    .recv()
                    .map_err(|e| GameError::WorkerFailed(e.to_string()))?;
                debug_assert_eq!(reply.olev, n, "single outstanding offer");
                // The grid schedules the request cost-minimally (Lemma IV.1)
                // and re-derives the payment — no trust in the worker needed.
                let allocation = scheduler.allocate(&cost, caps_ref, &loads_excl, reply.total);
                let before = schedule.olev_total(oes_units::OlevId(n));
                schedule.set_row(oes_units::OlevId(n), &allocation.shares);
                let change = (reply.total - before).abs();
                updates += 1;

                let congestion = schedule.system_congestion(caps_ref);
                let welfare = crate::potential::social_welfare(
                    satisfactions,
                    &cost,
                    caps_ref,
                    schedule,
                );
                trajectory.push(Snapshot { update: updates, congestion, welfare, change });
                if change < tolerance {
                    calm_streak += 1;
                } else {
                    calm_streak = 0;
                }
                if calm_streak >= n_olevs {
                    converged = true;
                    break;
                }
            }
            // Dropping the offer senders terminates the workers.
            drop(offer_txs);
            Ok(Outcome { converged, updates, trajectory })
        })
    }
}

/// A pipelined variant: the grid keeps up to `window` offers outstanding at
/// once, so an OLEV's best response is computed against loads that may be up
/// to `window − 1` updates stale — real V2I latency, modeled. Theorem IV.1's
/// asynchronous convergence claim covers exactly this regime (bounded
/// staleness), and the tests confirm the same optimum is reached.
#[derive(Debug)]
pub struct StaleDistributedGame<'g> {
    game: &'g mut Game,
    window: usize,
}

impl<'g> StaleDistributedGame<'g> {
    /// Wraps a game; `window` is the number of concurrently outstanding
    /// offers (1 = the fully synchronous protocol).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(game: &'g mut Game, window: usize) -> Self {
        assert!(window > 0, "need at least one outstanding offer");
        Self { game, window }
    }

    /// Runs round-robin best responses with pipelined (stale) offers.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::WorkerFailed`] if a worker thread dies.
    pub fn run(self, max_updates: usize) -> Result<Outcome, GameError> {
        let game = self.game;
        let window = self.window.min(game.olev_count());
        let n_olevs = game.olev_count();
        let cost = game.cost;
        let scheduler = game.scheduler;
        let caps = game.caps.clone();
        let p_max = game.p_max.clone();
        let tolerance = game.tolerance;

        let (reply_tx, reply_rx): (Sender<Reply>, Receiver<Reply>) = unbounded();
        let mut offer_txs: Vec<Sender<Offer>> = Vec::with_capacity(n_olevs);
        let mut offer_rxs: Vec<Receiver<Offer>> = Vec::with_capacity(n_olevs);
        for _ in 0..n_olevs {
            let (tx, rx) = unbounded();
            offer_txs.push(tx);
            offer_rxs.push(rx);
        }
        let satisfactions = &game.satisfactions;
        let schedule = &mut game.schedule;
        let caps_ref = &caps;

        std::thread::scope(|scope| -> Result<Outcome, GameError> {
            for (n, offer_rx) in offer_rxs.into_iter().enumerate() {
                let reply_tx = reply_tx.clone();
                let sat = satisfactions[n].as_ref();
                let p_max_n = p_max[n];
                scope.spawn(move || {
                    while let Ok(offer) = offer_rx.recv() {
                        let br = best_response(
                            sat,
                            &cost,
                            caps_ref,
                            &offer.loads_excl,
                            p_max_n,
                            scheduler,
                        );
                        if reply_tx.send(Reply { olev: n, total: br.total }).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(reply_tx);

            let mut trajectory = Vec::new();
            let mut calm_streak = 0usize;
            let mut updates = 0usize;
            let mut converged = false;
            let mut issued = 0usize;
            let mut outstanding = 0usize;
            while updates < max_updates {
                // Fill the pipeline: offers computed against *current* state,
                // applied only when the (stale) reply returns.
                while outstanding < window && issued < max_updates {
                    let n = issued % n_olevs;
                    let loads_excl = schedule.loads_excluding(oes_units::OlevId(n));
                    offer_txs[n]
                        .send(Offer { loads_excl })
                        .map_err(|e| GameError::WorkerFailed(e.to_string()))?;
                    issued += 1;
                    outstanding += 1;
                }
                let reply = reply_rx
                    .recv()
                    .map_err(|e| GameError::WorkerFailed(e.to_string()))?;
                outstanding -= 1;
                // Re-schedule against the *fresh* loads (the grid always
                // allocates consistently; only the OLEV's total is stale).
                let fresh_loads = schedule.loads_excluding(oes_units::OlevId(reply.olev));
                let allocation = scheduler.allocate(&cost, caps_ref, &fresh_loads, reply.total);
                let before = schedule.olev_total(oes_units::OlevId(reply.olev));
                schedule.set_row(oes_units::OlevId(reply.olev), &allocation.shares);
                let change = (reply.total - before).abs();
                updates += 1;
                trajectory.push(Snapshot {
                    update: updates,
                    congestion: schedule.system_congestion(caps_ref),
                    welfare: crate::potential::social_welfare(
                        satisfactions,
                        &cost,
                        caps_ref,
                        schedule,
                    ),
                    change,
                });
                if change < tolerance {
                    calm_streak += 1;
                } else {
                    calm_streak = 0;
                }
                if calm_streak >= n_olevs + window {
                    converged = true;
                    break;
                }
            }
            drop(offer_txs);
            // Drain any stale replies so workers can exit cleanly.
            while reply_rx.recv().is_ok() {}
            Ok(Outcome { converged, updates, trajectory })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GameBuilder;
    use crate::engine::UpdateOrder;
    use oes_units::Kilowatts;

    fn build() -> Game {
        GameBuilder::new()
            .sections(6, Kilowatts::new(60.0))
            .olevs(4, Kilowatts::new(50.0))
            .build()
            .unwrap()
    }

    #[test]
    fn distributed_converges() {
        let mut g = build();
        let out = DistributedGame::new(&mut g).run(1000).unwrap();
        assert!(out.converged());
        assert!(out.updates() < 1000);
    }

    #[test]
    fn distributed_matches_in_process_engine() {
        // Same protocol, different runtime ⇒ same equilibrium.
        let mut a = build();
        let mut b = build();
        a.run(UpdateOrder::RoundRobin, 2000).unwrap();
        DistributedGame::new(&mut b).run(2000).unwrap();
        assert!((a.welfare() - b.welfare()).abs() < 1e-9);
        for (la, lb) in a.section_loads().iter().zip(b.section_loads()) {
            assert!((la - lb).abs() < 1e-9);
        }
    }

    #[test]
    fn stale_offers_still_converge_to_the_same_optimum() {
        // Bounded staleness (Theorem IV.1's asynchronous regime): windows of
        // 1, 2, and 4 outstanding offers must all land on the synchronous
        // optimum.
        let mut reference = build();
        reference.run(UpdateOrder::RoundRobin, 2000).unwrap();
        for window in [1usize, 2, 4] {
            let mut g = build();
            let out = StaleDistributedGame::new(&mut g, window).run(5000).unwrap();
            assert!(out.converged(), "window {window} did not converge");
            assert!(
                (g.welfare() - reference.welfare()).abs() < 1e-6,
                "window {window}: welfare {} vs {}",
                g.welfare(),
                reference.welfare()
            );
        }
    }

    #[test]
    fn staleness_costs_updates_but_not_quality() {
        let mut sync_game = build();
        let sync_updates =
            DistributedGame::new(&mut sync_game).run(5000).unwrap().updates();
        let mut stale_game = build();
        let stale_out = StaleDistributedGame::new(&mut stale_game, 4).run(5000).unwrap();
        assert!(stale_out.converged());
        // Stale information can only slow the protocol down, never corrupt
        // the fixed point.
        assert!(stale_out.updates() + 8 >= sync_updates);
    }

    #[test]
    #[should_panic(expected = "at least one outstanding offer")]
    fn zero_window_panics() {
        let mut g = build();
        let _ = StaleDistributedGame::new(&mut g, 0);
    }

    #[test]
    fn distributed_with_heterogeneous_olevs() {
        let mut g = GameBuilder::new()
            .sections(5, Kilowatts::new(40.0))
            .olevs_weighted(2, Kilowatts::new(30.0), 2.0)
            .olevs_weighted(3, Kilowatts::new(60.0), 0.7)
            .build()
            .unwrap();
        let out = DistributedGame::new(&mut g).run(2000).unwrap();
        assert!(out.converged());
        // Eager OLEVs (higher weight) take more power.
        let p0 = g.schedule().olev_total(oes_units::OlevId(0));
        let p4 = g.schedule().olev_total(oes_units::OlevId(4));
        assert!(p0 > p4, "eager {p0} vs lukewarm {p4}");
    }
}
