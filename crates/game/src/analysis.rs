//! Mechanism analysis: what the pricing policy buys, quantified.
//!
//! Compares four regimes on the same physical scenario:
//!
//! 1. **centralized** — the welfare maximizer (no game, no privacy);
//! 2. **nonlinear game** — the paper's mechanism;
//! 3. **linear game** — the flat-price baseline;
//! 4. **free-for-all** — no pricing at all: every OLEV grabs its Eq. 2
//!    maximum and the grid greedily hosts it.
//!
//! The gap between 1 and 2 is the mechanism's price of anarchy (≈ 0 by
//! Theorem IV.1); the gap between 2 and 4 is what the mechanism is worth.

use oes_units::{Kilowatts, OlevId};

use crate::builder::GameBuilder;
use crate::centralized::solve_centralized;
use crate::engine::UpdateOrder;
use crate::error::GameError;
use crate::payment::Scheduler;
use crate::potential::social_welfare;
use crate::pricing::{LinearPricing, NonlinearPricing, PricingPolicy};
use crate::schedule::PowerSchedule;

/// The physical scenario under comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparisonScenario {
    /// Number of charging sections.
    pub sections: usize,
    /// Per-section capacity (kW).
    pub section_capacity: Kilowatts,
    /// Fleet size.
    pub olevs: usize,
    /// Per-OLEV Eq. 2 bound (kW).
    pub olev_p_max: Kilowatts,
    /// Satisfaction weight.
    pub weight: f64,
    /// LBMP β, $/MWh.
    pub beta: f64,
    /// Safety factor η.
    pub eta: f64,
}

impl Default for ComparisonScenario {
    fn default() -> Self {
        Self {
            sections: 20,
            section_capacity: Kilowatts::new(30.0),
            olevs: 15,
            olev_p_max: Kilowatts::new(60.0),
            weight: 1.0,
            beta: 15.0,
            eta: 0.9,
        }
    }
}

/// One regime's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegimeOutcome {
    /// Social welfare.
    pub welfare: f64,
    /// System congestion degree.
    pub congestion: f64,
    /// Max − min section load (kW): the balance measure of Fig. 5(c).
    pub load_spread: f64,
}

/// The full comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelfareComparison {
    /// Centralized welfare maximizer.
    pub centralized: RegimeOutcome,
    /// The paper's nonlinear pricing game.
    pub nonlinear: RegimeOutcome,
    /// The linear baseline game.
    pub linear: RegimeOutcome,
    /// No mechanism at all.
    pub free_for_all: RegimeOutcome,
}

impl WelfareComparison {
    /// `1 − W_nonlinear / W_centralized`: the mechanism's efficiency loss
    /// (≈ 0 by Theorem IV.1).
    #[must_use]
    pub fn price_of_anarchy_gap(&self) -> f64 {
        1.0 - self.nonlinear.welfare / self.centralized.welfare
    }

    /// `W_nonlinear − W_free_for_all`: what the mechanism is worth.
    #[must_use]
    pub fn mechanism_value(&self) -> f64 {
        self.nonlinear.welfare - self.free_for_all.welfare
    }
}

fn outcome_of_game(game: &crate::engine::Game) -> RegimeOutcome {
    let loads = game.section_loads();
    let min = loads.iter().fold(f64::INFINITY, |m, &l| m.min(l));
    let max = loads.iter().fold(f64::NEG_INFINITY, |m, &l| m.max(l));
    RegimeOutcome {
        welfare: game.welfare(),
        congestion: game.system_congestion(),
        load_spread: max - min,
    }
}

/// Runs all four regimes on the scenario.
///
/// # Errors
///
/// Propagates [`GameError`] from the game runs.
pub fn compare_regimes(s: &ComparisonScenario) -> Result<WelfareComparison, GameError> {
    let build = |policy: PricingPolicy| {
        GameBuilder::new()
            .sections(s.sections, s.section_capacity)
            .olevs_weighted(s.olevs, s.olev_p_max, s.weight)
            .pricing(policy)
            .eta(s.eta)
            .build()
    };
    let nonlinear_policy = PricingPolicy::Nonlinear(NonlinearPricing::paper_default(s.beta));
    let linear_policy = PricingPolicy::Linear(LinearPricing::paper_default(s.beta));

    // 1. Centralized ground truth (uses the nonlinear Z as the social cost).
    let reference = build(nonlinear_policy)?;
    let central = solve_centralized(&reference, 40_000);
    let centralized = {
        let loads = central.schedule.section_loads();
        let min = loads.iter().fold(f64::INFINITY, |m, &l| m.min(l));
        let max = loads.iter().fold(f64::NEG_INFINITY, |m, &l| m.max(l));
        RegimeOutcome {
            welfare: central.welfare,
            congestion: central.schedule.system_congestion(reference.caps()),
            load_spread: max - min,
        }
    };

    // 2. The nonlinear game.
    let mut nl = build(nonlinear_policy)?;
    nl.run(UpdateOrder::RoundRobin, 60_000)?;
    let nonlinear = outcome_of_game(&nl);

    // 3. The linear game.
    let mut lin = build(linear_policy)?;
    lin.run(UpdateOrder::RoundRobin, 60_000)?;
    let linear = outcome_of_game(&lin);

    // 4. Free-for-all: everyone demands the maximum, greedily hosted; the
    // welfare is still evaluated against the social cost Z.
    let free_for_all = {
        let reference = build(nonlinear_policy)?;
        let mut schedule = PowerSchedule::zeros(s.olevs, s.sections);
        for n in 0..s.olevs {
            let loads = schedule.loads_excluding(OlevId(n));
            let allocation = Scheduler::Greedy.allocate(
                reference.cost(),
                reference.caps(),
                &loads,
                s.olev_p_max.value(),
            );
            schedule.set_row(OlevId(n), &allocation.shares);
        }
        let welfare = social_welfare(
            reference.satisfactions(),
            reference.cost(),
            reference.caps(),
            &schedule,
        );
        let loads = schedule.section_loads();
        let min = loads.iter().fold(f64::INFINITY, |m, &l| m.min(l));
        let max = loads.iter().fold(f64::NEG_INFINITY, |m, &l| m.max(l));
        RegimeOutcome {
            welfare,
            congestion: schedule.system_congestion(reference.caps()),
            load_spread: max - min,
        }
    };

    Ok(WelfareComparison {
        centralized,
        nonlinear,
        linear,
        free_for_all,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn game_is_near_centralized_and_beats_free_for_all() {
        let cmp = compare_regimes(&ComparisonScenario::default()).unwrap();
        assert!(
            cmp.price_of_anarchy_gap().abs() < 5e-3,
            "PoA gap {} too large",
            cmp.price_of_anarchy_gap()
        );
        assert!(
            cmp.mechanism_value() > 0.0,
            "pricing should beat free-for-all: {} vs {}",
            cmp.nonlinear.welfare,
            cmp.free_for_all.welfare
        );
    }

    #[test]
    fn free_for_all_overloads_the_lane() {
        let cmp = compare_regimes(&ComparisonScenario::default()).unwrap();
        // 15 × 60 kW demanded into 20 × 30 kW of sections: congestion 1.5
        // without a mechanism, ≤ ~η with one.
        assert!(cmp.free_for_all.congestion > 1.2);
        assert!(cmp.nonlinear.congestion < 1.0);
    }

    #[test]
    fn nonlinear_balances_linear_does_not() {
        // Interior demand so greedy's imbalance shows.
        let s = ComparisonScenario {
            weight: 0.4,
            olev_p_max: Kilowatts::new(40.0),
            ..ComparisonScenario::default()
        };
        let cmp = compare_regimes(&s).unwrap();
        assert!(cmp.nonlinear.load_spread < 1e-6);
        assert!(cmp.linear.load_spread > 1.0);
    }
}
