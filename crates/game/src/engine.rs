//! The asynchronous best-response engine (Sections IV.D–IV.G).
//!
//! The smart grid repeatedly picks one OLEV, posts it the updated payment
//! function (Eq. 20), receives its best-response request (Eq. 21), and
//! re-schedules it cost-minimally (Lemma IV.1). Theorem IV.1 guarantees the
//! process converges to the socially optimal schedule; the engine detects
//! convergence when a full cycle of updates moves nobody by more than the
//! tolerance.

use oes_telemetry::Telemetry;
use oes_units::{OlevId, SectionId};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::best_response::best_response;
use crate::error::GameError;
use crate::payment::{payment_for_schedule, Scheduler};
use crate::potential::social_welfare;
use crate::pricing::SectionCost;
use crate::satisfaction::Satisfaction;
use crate::schedule::PowerSchedule;

/// The order in which the grid polls OLEVs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOrder {
    /// Cyclic polling (the paper's cycle-length-`N` guarantee).
    RoundRobin,
    /// Uniformly random polling, seeded for reproducibility (the paper's
    /// "randomly chosen OLEV").
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// One recorded point of a run's trajectory.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    /// Update counter (1-based).
    pub update: usize,
    /// System congestion degree: total load over total capacity.
    pub congestion: f64,
    /// Social welfare at this point.
    pub welfare: f64,
    /// `|Δp_n|` of the update that produced this snapshot.
    pub change: f64,
}

/// The result of running the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    pub(crate) converged: bool,
    pub(crate) updates: usize,
    /// One snapshot per update, in order.
    pub trajectory: Vec<Snapshot>,
    pub(crate) degradation: crate::faults::DegradationReport,
}

impl Outcome {
    /// Whether a full cycle of updates moved nobody by more than the
    /// tolerance before the update budget ran out.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// What the network did to the run: drops, retries, timeouts, and
    /// evictions. The in-process engine always reports a clean run; the
    /// decentralized runtime fills this in.
    #[must_use]
    pub fn degradation(&self) -> &crate::faults::DegradationReport {
        &self.degradation
    }

    /// How many single-OLEV updates ran.
    #[must_use]
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// The welfare at the end of the run.
    ///
    /// # Panics
    ///
    /// Panics if the run performed no updates.
    #[must_use]
    pub fn final_welfare(&self) -> f64 {
        self.trajectory.last().expect("at least one update").welfare
    }

    /// The first update index at which congestion reached `fraction` of its
    /// final value — the convergence-speed measure of Figs. 5(d)/6(d).
    #[must_use]
    pub fn updates_to_reach(&self, fraction: f64) -> Option<usize> {
        let target = self.trajectory.last()?.congestion * fraction;
        self.trajectory
            .iter()
            .find(|s| s.congestion >= target)
            .map(|s| s.update)
    }
}

/// A configured pricing game between `N` OLEVs and `C` charging sections.
///
/// Build one with [`crate::GameBuilder`]. The state is the current power
/// schedule; [`Game::run`] advances it by asynchronous best responses.
pub struct Game {
    pub(crate) satisfactions: Vec<Box<dyn Satisfaction>>,
    pub(crate) p_max: Vec<f64>,
    pub(crate) caps: Vec<f64>,
    pub(crate) cost: SectionCost,
    pub(crate) scheduler: Scheduler,
    pub(crate) schedule: PowerSchedule,
    pub(crate) tolerance: f64,
}

impl core::fmt::Debug for Game {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Game")
            .field("olevs", &self.p_max.len())
            .field("sections", &self.caps.len())
            .field("scheduler", &self.scheduler)
            .field("tolerance", &self.tolerance)
            .finish_non_exhaustive()
    }
}

impl Game {
    /// Number of OLEVs.
    #[must_use]
    pub fn olev_count(&self) -> usize {
        self.p_max.len()
    }

    /// Number of charging sections.
    #[must_use]
    pub fn section_count(&self) -> usize {
        self.caps.len()
    }

    /// Per-section capacities `P_line` (kW).
    #[must_use]
    pub fn caps(&self) -> &[f64] {
        &self.caps
    }

    /// Per-OLEV capacity bounds `P_OLEV` (kW).
    #[must_use]
    pub fn p_max(&self) -> &[f64] {
        &self.p_max
    }

    /// The section cost `Z`.
    #[must_use]
    pub fn cost(&self) -> &SectionCost {
        &self.cost
    }

    /// The grid's scheduler.
    #[must_use]
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// The satisfaction functions (grid-side code never calls these in the
    /// decentralized path; they are exposed for analysis and ground truth).
    #[must_use]
    pub fn satisfactions(&self) -> &[Box<dyn Satisfaction>] {
        &self.satisfactions
    }

    /// The current power schedule.
    #[must_use]
    pub fn schedule(&self) -> &PowerSchedule {
        &self.schedule
    }

    /// Replaces the current schedule (e.g. to warm-start from a solution).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions mismatch.
    pub fn set_schedule(&mut self, schedule: PowerSchedule) {
        assert_eq!(
            schedule.olev_count(),
            self.olev_count(),
            "OLEV count mismatch"
        );
        assert_eq!(
            schedule.section_count(),
            self.section_count(),
            "section count mismatch"
        );
        self.schedule = schedule;
    }

    /// Resets the schedule to all-zero.
    pub fn reset(&mut self) {
        self.schedule = PowerSchedule::zeros(self.olev_count(), self.section_count());
    }

    /// Current per-section loads `P_c`.
    #[must_use]
    pub fn section_loads(&self) -> Vec<f64> {
        self.schedule.section_loads()
    }

    /// System congestion degree (total load over total capacity).
    #[must_use]
    pub fn system_congestion(&self) -> f64 {
        self.schedule.system_congestion(&self.caps)
    }

    /// Current social welfare `W(p)` (Eq. 7).
    #[must_use]
    pub fn welfare(&self) -> f64 {
        social_welfare(&self.satisfactions, &self.cost, &self.caps, &self.schedule)
    }

    /// Total payment `Σ_n ξ_n` collected at the current schedule.
    #[must_use]
    pub fn total_payment(&self) -> f64 {
        (0..self.olev_count())
            .map(|n| {
                let id = OlevId(n);
                let loads_excl = self.schedule.loads_excluding(id);
                payment_for_schedule(&self.cost, &self.caps, &loads_excl, self.schedule.row(id))
            })
            .sum()
    }

    /// The average unit payment in $/MWh (total payment over total energy,
    /// with the crate's kWh-scale costs converted back to the LBMP scale) —
    /// the y-axis of Figs. 5(a)/6(a). Returns zero with no allocation.
    #[must_use]
    pub fn unit_payment_dollars_per_mwh(&self) -> f64 {
        let power = self.schedule.total();
        if power <= 0.0 {
            return 0.0;
        }
        self.total_payment() / power * 1000.0
    }

    /// Runs one best-response update for OLEV `n` (Eqs. 20–21) and returns
    /// `|Δp_n|`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::UnknownOlev`] if `n` is out of range.
    pub fn update_olev(&mut self, n: usize) -> Result<f64, GameError> {
        if n >= self.olev_count() {
            return Err(GameError::UnknownOlev(n));
        }
        let id = OlevId(n);
        let loads_excl = self.schedule.loads_excluding(id);
        let before = self.schedule.olev_total(id);
        let br = best_response(
            self.satisfactions[n].as_ref(),
            &self.cost,
            &self.caps,
            &loads_excl,
            self.p_max[n],
            self.scheduler,
        );
        self.schedule.set_row(id, &br.allocation.shares);
        Ok((br.total - before).abs())
    }

    /// Runs asynchronous best responses until convergence or `max_updates`.
    ///
    /// Convergence: `N` consecutive updates (one full cycle) each changed an
    /// OLEV's total by less than the tolerance.
    ///
    /// # Errors
    ///
    /// Returns [`GameError`] if the scenario is degenerate (cannot happen for
    /// builder-constructed games).
    pub fn run(&mut self, order: UpdateOrder, max_updates: usize) -> Result<Outcome, GameError> {
        self.run_with(order, max_updates, &Telemetry::disabled())
    }

    /// [`Game::run`] with telemetry: each best-response update is wrapped in
    /// an `engine.update` span (keyed by OLEV), and each iteration emits
    /// `engine.welfare` / `engine.congestion` / `engine.change` gauges keyed
    /// by the update counter. With a disabled handle this is exactly
    /// [`Game::run`].
    ///
    /// # Errors
    ///
    /// Returns [`GameError`] if the scenario is degenerate (cannot happen for
    /// builder-constructed games).
    pub fn run_with(
        &mut self,
        order: UpdateOrder,
        max_updates: usize,
        telemetry: &Telemetry,
    ) -> Result<Outcome, GameError> {
        let n_olevs = self.olev_count();
        let mut rng = match order {
            UpdateOrder::Random { seed } => Some(ChaCha8Rng::seed_from_u64(seed)),
            UpdateOrder::RoundRobin => None,
        };
        let mut trajectory = Vec::with_capacity(max_updates.min(4096));
        // Accumulated across the whole run; every exit path returns this
        // same report so early convergence cannot zero the counters.
        let mut report = crate::faults::DegradationReport::default();
        let mut calm_streak = 0usize;
        let mut updates = 0usize;
        while updates < max_updates {
            let n = match &mut rng {
                Some(r) => r.gen_range(0..n_olevs),
                None => updates % n_olevs,
            };
            let change = {
                let _span = telemetry.span("engine.update", n as i64);
                self.update_olev(n)?
            };
            updates += 1;
            // The in-process engine "posts" one offer per update; the same
            // accounting the decentralized coordinator does on a clean link.
            report.offers_sent += 1;
            let snapshot = Snapshot {
                update: updates,
                congestion: self.system_congestion(),
                welfare: self.welfare(),
                change,
            };
            let key = updates as i64;
            telemetry.gauge("engine.welfare", key, snapshot.welfare);
            telemetry.gauge("engine.congestion", key, snapshot.congestion);
            telemetry.gauge("engine.change", key, snapshot.change);
            trajectory.push(snapshot);
            if change < self.tolerance {
                calm_streak += 1;
            } else {
                calm_streak = 0;
            }
            // A full calm cycle: with round-robin that provably covers every
            // OLEV; with random polling we require a longer streak so that
            // every OLEV has overwhelming probability of being included.
            let needed = match order {
                UpdateOrder::RoundRobin => n_olevs,
                UpdateOrder::Random { .. } => 4 * n_olevs,
            };
            if calm_streak >= needed {
                telemetry.counter("engine.converged", -1, 1);
                return Ok(Outcome {
                    converged: true,
                    updates,
                    trajectory,
                    degradation: report,
                });
            }
        }
        Ok(Outcome {
            converged: false,
            updates,
            trajectory,
            degradation: report,
        })
    }

    /// Congestion degree of one section.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn section_congestion(&self, c: usize) -> f64 {
        self.schedule.congestion_degree(SectionId(c), self.caps[c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GameBuilder;
    use crate::pricing::{LinearPricing, NonlinearPricing, PricingPolicy};
    use oes_units::Kilowatts;

    fn small_game() -> Game {
        GameBuilder::new()
            .sections(8, Kilowatts::new(60.0))
            .olevs(4, Kilowatts::new(50.0))
            .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
                15.0,
            )))
            .build()
            .expect("valid scenario")
    }

    #[test]
    fn run_converges_round_robin() {
        let mut g = small_game();
        let out = g.run(UpdateOrder::RoundRobin, 1000).unwrap();
        assert!(out.converged());
        assert!(out.updates() < 1000);
        assert!(out.final_welfare().is_finite());
    }

    #[test]
    fn run_converges_random_order_to_same_welfare() {
        let mut a = small_game();
        let mut b = small_game();
        let wa = a
            .run(UpdateOrder::RoundRobin, 2000)
            .unwrap()
            .final_welfare();
        let wb = b
            .run(UpdateOrder::Random { seed: 9 }, 2000)
            .unwrap()
            .final_welfare();
        // Theorem IV.1: the optimum is unique, so the order cannot matter.
        assert!((wa - wb).abs() < 1e-6, "{wa} vs {wb}");
    }

    #[test]
    fn welfare_is_monotone_along_best_responses() {
        // The exact-potential property in action: every best response can
        // only raise W.
        let mut g = small_game();
        let mut last = g.welfare();
        for k in 0..40 {
            g.update_olev(k % 4).unwrap();
            let w = g.welfare();
            assert!(
                w >= last - 1e-9,
                "welfare dropped at update {k}: {last} -> {w}"
            );
            last = w;
        }
    }

    #[test]
    fn nonlinear_equilibrium_is_load_balanced() {
        let mut g = small_game();
        g.run(UpdateOrder::RoundRobin, 2000).unwrap();
        let loads = g.section_loads();
        let min = loads.iter().fold(f64::INFINITY, |m, &l| m.min(l));
        let max = loads.iter().fold(0.0f64, |m, &l| m.max(l));
        assert!(max - min < 1e-6, "imbalance {min}..{max}");
    }

    #[test]
    fn linear_equilibrium_is_unbalanced() {
        let mut g = GameBuilder::new()
            .sections(8, Kilowatts::new(60.0))
            .olevs(4, Kilowatts::new(50.0))
            .pricing(PricingPolicy::Linear(LinearPricing::paper_default(15.0)))
            .build()
            .unwrap();
        g.run(UpdateOrder::RoundRobin, 2000).unwrap();
        let loads = g.section_loads();
        let min = loads.iter().fold(f64::INFINITY, |m, &l| m.min(l));
        let max = loads.iter().fold(0.0f64, |m, &l| m.max(l));
        assert!(
            max - min > 1.0,
            "greedy filling should be uneven: {loads:?}"
        );
    }

    #[test]
    fn unknown_olev_rejected() {
        let mut g = small_game();
        assert_eq!(g.update_olev(99), Err(GameError::UnknownOlev(99)));
    }

    #[test]
    fn reset_zeroes_the_schedule() {
        let mut g = small_game();
        g.run(UpdateOrder::RoundRobin, 100).unwrap();
        assert!(g.schedule().total() > 0.0);
        g.reset();
        assert_eq!(g.schedule().total(), 0.0);
        assert_eq!(g.system_congestion(), 0.0);
    }

    #[test]
    fn unit_payment_zero_without_allocation() {
        let g = small_game();
        assert_eq!(g.unit_payment_dollars_per_mwh(), 0.0);
    }

    #[test]
    fn trajectory_congestion_is_nondecreasing_from_cold_start() {
        // From the all-zero schedule, requests only grow toward equilibrium
        // in a symmetric scenario (Figs. 5(d)/6(d) show this ramp).
        let mut g = small_game();
        let out = g.run(UpdateOrder::RoundRobin, 500).unwrap();
        let first = out.trajectory.first().unwrap().congestion;
        let last = out.trajectory.last().unwrap().congestion;
        assert!(last >= first);
        assert!(out.updates_to_reach(0.95).is_some());
    }

    #[test]
    fn early_convergence_keeps_accumulated_degradation_counters() {
        // Regression: the convergence exit path used to return a fresh
        // `DegradationReport::default()`, wiping the per-update accounting.
        let mut g = small_game();
        let out = g.run(UpdateOrder::RoundRobin, 1000).unwrap();
        assert!(out.converged(), "must exercise the early-convergence path");
        assert_eq!(
            out.degradation().offers_sent,
            out.updates(),
            "one offer per update must survive the early return"
        );
        assert!(out.degradation().is_clean(), "in-process runs are clean");
    }

    #[test]
    fn instrumented_run_emits_per_update_metrics_without_changing_outcome() {
        use oes_telemetry::{RingBufferRecorder, Telemetry};
        use std::sync::Arc;

        let mut plain = small_game();
        let baseline = plain.run(UpdateOrder::RoundRobin, 1000).unwrap();

        let ring = Arc::new(RingBufferRecorder::new(1 << 14));
        let telemetry = Telemetry::new(ring.clone());
        let mut instrumented = small_game();
        let out = instrumented
            .run_with(UpdateOrder::RoundRobin, 1000, &telemetry)
            .unwrap();

        // Recorder neutrality: bit-identical trajectory and schedule.
        assert_eq!(out, baseline);
        assert_eq!(instrumented.schedule(), plain.schedule());

        let events = ring.events();
        let gauges = events.iter().filter(|e| e.name == "engine.welfare").count();
        assert_eq!(gauges, out.updates());
        let exits = events
            .iter()
            .filter(|e| {
                e.name == "engine.update"
                    && matches!(e.sample, oes_telemetry::Sample::SpanExit { .. })
            })
            .count();
        assert_eq!(exits, out.updates());
        assert_eq!(ring.counter_total("engine.converged"), 1);
        assert_eq!(
            ring.last_gauge("engine.welfare"),
            Some(baseline.final_welfare())
        );
    }

    #[test]
    fn outcome_updates_to_reach_handles_thresholds() {
        let mut g = small_game();
        let out = g.run(UpdateOrder::RoundRobin, 500).unwrap();
        let early = out.updates_to_reach(0.5).unwrap();
        let late = out.updates_to_reach(0.99).unwrap();
        assert!(early <= late);
    }
}
