//! The asynchronous best-response engine (Sections IV.D–IV.G).
//!
//! The smart grid repeatedly picks one OLEV, posts it the updated payment
//! function (Eq. 20), receives its best-response request (Eq. 21), and
//! re-schedules it cost-minimally (Lemma IV.1). Theorem IV.1 guarantees the
//! process converges to the socially optimal schedule; the engine detects
//! convergence when a full cycle of updates moves nobody by more than the
//! tolerance.

use oes_telemetry::Telemetry;
use oes_units::{OlevId, SectionId};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::best_response::best_response;
use crate::error::GameError;
use crate::payment::{payment_for_schedule, Scheduler};
use crate::pricing::SectionCost;
use crate::satisfaction::Satisfaction;
use crate::schedule::PowerSchedule;
use crate::state::ScheduleState;

/// The order in which the grid polls OLEVs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOrder {
    /// Cyclic polling (the paper's cycle-length-`N` guarantee).
    RoundRobin,
    /// Uniformly random polling, seeded for reproducibility (the paper's
    /// "randomly chosen OLEV").
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// One recorded point of a run's trajectory.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    /// Update counter (1-based).
    pub update: usize,
    /// System congestion degree: total load over total capacity.
    pub congestion: f64,
    /// Social welfare at this point.
    pub welfare: f64,
    /// `|Δp_n|` of the update that produced this snapshot.
    pub change: f64,
}

/// The result of running the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    pub(crate) converged: bool,
    pub(crate) updates: usize,
    /// One snapshot per update, in order.
    pub trajectory: Vec<Snapshot>,
    pub(crate) degradation: crate::faults::DegradationReport,
    /// Welfare of the schedule when the run ended — the fallback for
    /// [`Outcome::final_welfare`] when the trajectory is empty (a zero-update
    /// budget, or a hardened run where every OLEV was evicted before an
    /// update applied).
    pub(crate) end_welfare: f64,
}

impl Outcome {
    /// Whether a full cycle of updates moved nobody by more than the
    /// tolerance before the update budget ran out.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// What the network did to the run: drops, retries, timeouts, and
    /// evictions. The in-process engine always reports a clean run; the
    /// decentralized runtime fills this in.
    #[must_use]
    pub fn degradation(&self) -> &crate::faults::DegradationReport {
        &self.degradation
    }

    /// How many single-OLEV updates ran.
    #[must_use]
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// The welfare at the end of the run: the last snapshot's welfare, or the
    /// welfare of the schedule as the run ended when no update was recorded
    /// (zero-update budget, or a hardened run that evicted everyone before an
    /// update applied).
    #[must_use]
    pub fn final_welfare(&self) -> f64 {
        self.trajectory
            .last()
            .map_or(self.end_welfare, |s| s.welfare)
    }

    /// The update index from which congestion *stayed at or above* `fraction`
    /// of its final value — the convergence-speed measure of Figs. 5(d)/6(d).
    ///
    /// # Examples
    ///
    /// ```
    /// use oes_game::{GameBuilder, UpdateOrder};
    /// use oes_units::Kilowatts;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut game = GameBuilder::new()
    ///     .sections(8, Kilowatts::new(60.0))
    ///     .olevs(5, Kilowatts::new(40.0))
    ///     .build()?;
    /// let outcome = game.run(UpdateOrder::RoundRobin, 1_000)?;
    /// // The fleet reaches 95% of its final congestion within the run, and
    /// // the trajectory records one snapshot per applied update.
    /// let ramp = outcome.updates_to_reach(0.95).expect("non-zero load");
    /// assert!(ramp <= outcome.updates());
    /// assert_eq!(outcome.trajectory.len(), outcome.updates());
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// Scans for the last crossing, so a transient early spike on a
    /// non-monotone trajectory does not count as "reached". Returns `None`
    /// for an empty trajectory or a run that ended with zero congestion: a
    /// fleet that never drew power has no ramp-up time (the old
    /// first-crossing scan reported a spurious `Some(1)` there, because the
    /// target `0 × fraction` is trivially met by the first snapshot).
    #[must_use]
    pub fn updates_to_reach(&self, fraction: f64) -> Option<usize> {
        let last = self.trajectory.last()?;
        if last.congestion <= 0.0 {
            return None;
        }
        let target = last.congestion * fraction;
        let mut reached = None;
        for s in self.trajectory.iter().rev() {
            if s.congestion >= target {
                reached = Some(s.update);
            } else {
                break;
            }
        }
        reached
    }
}

/// A configured pricing game between `N` OLEVs and `C` charging sections.
///
/// Build one with [`crate::GameBuilder`]. The state is the current power
/// schedule; [`Game::run`] advances it by asynchronous best responses.
pub struct Game {
    pub(crate) satisfactions: Vec<Box<dyn Satisfaction>>,
    pub(crate) p_max: Vec<f64>,
    pub(crate) caps: Vec<f64>,
    pub(crate) cost: SectionCost,
    pub(crate) scheduler: Scheduler,
    pub(crate) state: ScheduleState,
    pub(crate) tolerance: f64,
    /// Reusable `P_{-n,c}` buffer so the hot update path does not allocate.
    pub(crate) scratch_loads: Vec<f64>,
    /// Reusable full-width row buffer for scattering windowed allocations.
    pub(crate) scratch_row: Vec<f64>,
    /// Per-OLEV accessible-section windows `[start, end)` — the corridor
    /// span the OLEV can draw power on. Defaults to the full section range.
    pub(crate) windows: Vec<(usize, usize)>,
    /// Applied rows between exact welfare resyncs; survives
    /// [`Game::set_schedule`] / [`Game::reset`].
    pub(crate) welfare_resync_every: usize,
    /// Schedule writes between exact aggregate resyncs; survives
    /// [`Game::set_schedule`] / [`Game::reset`].
    pub(crate) schedule_resync_writes: usize,
}

impl core::fmt::Debug for Game {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Game")
            .field("olevs", &self.p_max.len())
            .field("sections", &self.caps.len())
            .field("scheduler", &self.scheduler)
            .field("tolerance", &self.tolerance)
            .finish_non_exhaustive()
    }
}

impl Game {
    /// Number of OLEVs.
    #[must_use]
    pub fn olev_count(&self) -> usize {
        self.p_max.len()
    }

    /// Number of charging sections.
    #[must_use]
    pub fn section_count(&self) -> usize {
        self.caps.len()
    }

    /// Per-section capacities `P_line` (kW).
    #[must_use]
    pub fn caps(&self) -> &[f64] {
        &self.caps
    }

    /// Per-OLEV capacity bounds `P_OLEV` (kW).
    #[must_use]
    pub fn p_max(&self) -> &[f64] {
        &self.p_max
    }

    /// The section cost `Z`.
    #[must_use]
    pub fn cost(&self) -> &SectionCost {
        &self.cost
    }

    /// The grid's scheduler.
    #[must_use]
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// The satisfaction functions (grid-side code never calls these in the
    /// decentralized path; they are exposed for analysis and ground truth).
    #[must_use]
    pub fn satisfactions(&self) -> &[Box<dyn Satisfaction>] {
        &self.satisfactions
    }

    /// Per-OLEV accessible-section windows `[start, end)` — the corridor
    /// span each OLEV can draw power on ([`crate::GameBuilder::olevs_in`]).
    /// OLEVs without an explicit window cover the full section range. Honored
    /// by the in-process engines (serial and parallel); the decentralized
    /// runtime plays full-width best responses.
    #[must_use]
    pub fn windows(&self) -> &[(usize, usize)] {
        &self.windows
    }

    /// The current power schedule.
    #[must_use]
    pub fn schedule(&self) -> &PowerSchedule {
        self.state.schedule()
    }

    /// Replaces the current schedule (e.g. to warm-start from a solution),
    /// recomputing the incremental welfare state exactly.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions mismatch.
    pub fn set_schedule(&mut self, schedule: PowerSchedule) {
        assert_eq!(
            schedule.olev_count(),
            self.olev_count(),
            "OLEV count mismatch"
        );
        assert_eq!(
            schedule.section_count(),
            self.section_count(),
            "section count mismatch"
        );
        self.state = ScheduleState::new(schedule, &self.satisfactions, &self.cost, &self.caps);
        self.state.set_resync_interval(self.welfare_resync_every);
        self.state
            .set_schedule_resync_writes(self.schedule_resync_writes);
    }

    /// Solves the [mean-field limit](crate::meanfield) of this game and
    /// seeds the schedule from it (every OLEV starts at its type
    /// representative's equilibrium row), returning the solution. The exact
    /// engine then only has to burn down the O(1/N) mean-field bias —
    /// [`Game::reset`] returns to the cold all-zero start.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::MeanFieldUnsupported`] when the scenario falls
    /// outside the mean-field contract (see [`crate::meanfield`]).
    pub fn warm_start_mean_field(
        &mut self,
    ) -> Result<crate::meanfield::MeanFieldSolution, GameError> {
        let solution = crate::meanfield::solve_mean_field(self)?;
        self.set_schedule(solution.to_schedule());
        Ok(solution)
    }

    /// Resets the schedule to all-zero.
    pub fn reset(&mut self) {
        self.set_schedule(PowerSchedule::zeros(
            self.olev_count(),
            self.section_count(),
        ));
    }

    /// Sets how often the incremental welfare state performs an exact
    /// from-scratch resync (every `every` applied updates). The default
    /// ([`crate::state::DEFAULT_RESYNC_EVERY`]) keeps drift far below the
    /// engine tolerance; an interval of 1 reproduces the naive recompute
    /// path exactly.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn set_welfare_resync_interval(&mut self, every: usize) {
        self.state.set_resync_interval(every);
        self.welfare_resync_every = every;
    }

    /// Sets how often the schedule's cached aggregates (loads, totals — the
    /// parallel engine's per-round snapshot source) are recomputed exactly
    /// (every `writes` row writes). The default
    /// ([`crate::schedule::RESYNC_WRITES`]) keeps drift far below the engine
    /// tolerance; an interval of 1 keeps the caches bit-identical to the
    /// naive column/row sums.
    ///
    /// # Panics
    ///
    /// Panics if `writes` is zero.
    pub fn set_schedule_resync_writes(&mut self, writes: usize) {
        self.state.set_schedule_resync_writes(writes);
        self.schedule_resync_writes = writes;
    }

    /// Current per-section loads `P_c`.
    #[must_use]
    pub fn section_loads(&self) -> Vec<f64> {
        self.state.schedule().section_loads()
    }

    /// System congestion degree (total load over total capacity).
    #[must_use]
    pub fn system_congestion(&self) -> f64 {
        self.state.schedule().system_congestion(&self.caps)
    }

    /// Current social welfare `W(p)` (Eq. 7), from the incrementally
    /// maintained sums — O(1).
    #[must_use]
    pub fn welfare(&self) -> f64 {
        self.state.welfare()
    }

    /// Total payment `Σ_n ξ_n` collected at the current schedule.
    #[must_use]
    pub fn total_payment(&self) -> f64 {
        let schedule = self.state.schedule();
        let mut loads_excl = Vec::with_capacity(self.section_count());
        let mut total = 0.0;
        for n in 0..self.olev_count() {
            let id = OlevId(n);
            schedule.loads_excluding_into(id, &mut loads_excl);
            total += payment_for_schedule(&self.cost, &self.caps, &loads_excl, schedule.row(id));
        }
        total
    }

    /// The average unit payment in $/MWh (total payment over total energy,
    /// with the crate's kWh-scale costs converted back to the LBMP scale) —
    /// the y-axis of Figs. 5(a)/6(a). Returns zero with no allocation.
    #[must_use]
    pub fn unit_payment_dollars_per_mwh(&self) -> f64 {
        let power = self.state.schedule().total();
        if power <= 0.0 {
            return 0.0;
        }
        self.total_payment() / power * 1000.0
    }

    /// Runs one best-response update for OLEV `n` (Eqs. 20–21) and returns
    /// `|Δp_n|`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::UnknownOlev`] if `n` is out of range.
    pub fn update_olev(&mut self, n: usize) -> Result<f64, GameError> {
        if n >= self.olev_count() {
            return Err(GameError::UnknownOlev(n));
        }
        let id = OlevId(n);
        self.state.loads_excluding_into(id, &mut self.scratch_loads);
        let before = self.state.schedule().olev_total(id);
        let (w0, w1) = self.windows[n];
        let br = best_response(
            self.satisfactions[n].as_ref(),
            &self.cost,
            &self.caps[w0..w1],
            &self.scratch_loads[w0..w1],
            self.p_max[n],
            self.scheduler,
        );
        let row: &[f64] = if (w0, w1) == (0, self.caps.len()) {
            &br.allocation.shares
        } else {
            // Scatter the windowed allocation into a full-width row: the
            // schedule stays zero outside the OLEV's corridor span.
            self.scratch_row.fill(0.0);
            self.scratch_row[w0..w1].copy_from_slice(&br.allocation.shares);
            &self.scratch_row
        };
        self.state
            .apply_row(id, row, &self.satisfactions, &self.cost, &self.caps);
        Ok((br.total - before).abs())
    }

    /// Runs asynchronous best responses until convergence or `max_updates`.
    ///
    /// Convergence: `N` consecutive updates (one full cycle) each changed an
    /// OLEV's total by less than the tolerance.
    ///
    /// # Errors
    ///
    /// Returns [`GameError`] if the scenario is degenerate (cannot happen for
    /// builder-constructed games).
    ///
    /// # Examples
    ///
    /// The polling order never changes the equilibrium (Theorem IV.1), only
    /// the path to it:
    ///
    /// ```
    /// use oes_game::{GameBuilder, UpdateOrder};
    /// use oes_units::Kilowatts;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let build = || GameBuilder::new()
    ///     .sections(10, Kilowatts::new(60.0))
    ///     .olevs(6, Kilowatts::new(45.0))
    ///     .build();
    /// let mut cyclic = build()?;
    /// let mut random = build()?;
    /// let a = cyclic.run(UpdateOrder::RoundRobin, 2_000)?;
    /// let b = random.run(UpdateOrder::Random { seed: 42 }, 2_000)?;
    /// assert!(a.converged() && b.converged());
    /// assert!((cyclic.welfare() - random.welfare()).abs() < 1e-9);
    /// # Ok(())
    /// # }
    /// ```
    pub fn run(&mut self, order: UpdateOrder, max_updates: usize) -> Result<Outcome, GameError> {
        self.run_with(order, max_updates, &Telemetry::disabled())
    }

    /// [`Game::run`] with telemetry: each best-response update is wrapped in
    /// an `engine.update` span (keyed by OLEV), and each iteration emits
    /// `engine.welfare` / `engine.congestion` / `engine.change` gauges keyed
    /// by the update counter. With a disabled handle this is exactly
    /// [`Game::run`].
    ///
    /// # Errors
    ///
    /// Returns [`GameError`] if the scenario is degenerate (cannot happen for
    /// builder-constructed games).
    pub fn run_with(
        &mut self,
        order: UpdateOrder,
        max_updates: usize,
        telemetry: &Telemetry,
    ) -> Result<Outcome, GameError> {
        let n_olevs = self.olev_count();
        let mut rng = match order {
            UpdateOrder::Random { seed } => Some(ChaCha8Rng::seed_from_u64(seed)),
            UpdateOrder::RoundRobin => None,
        };
        let mut trajectory = Vec::with_capacity(max_updates.min(4096));
        // Accumulated across the whole run; every exit path returns this
        // same report so early convergence cannot zero the counters.
        let mut report = crate::faults::DegradationReport::default();
        let mut calm_streak = 0usize;
        let mut updates = 0usize;
        while updates < max_updates {
            let n = match &mut rng {
                Some(r) => r.gen_range(0..n_olevs),
                None => updates % n_olevs,
            };
            let change = {
                let _span = telemetry.span("engine.update", n as i64);
                self.update_olev(n)?
            };
            updates += 1;
            // The in-process engine "posts" one offer per update; the same
            // accounting the decentralized coordinator does on a clean link.
            report.offers_sent += 1;
            let snapshot = Snapshot {
                update: updates,
                congestion: self.system_congestion(),
                welfare: self.welfare(),
                change,
            };
            let key = updates as i64;
            telemetry.gauge("engine.welfare", key, snapshot.welfare);
            telemetry.gauge("engine.congestion", key, snapshot.congestion);
            telemetry.gauge("engine.change", key, snapshot.change);
            trajectory.push(snapshot);
            if change < self.tolerance {
                calm_streak += 1;
            } else {
                calm_streak = 0;
            }
            // A full calm cycle: with round-robin that provably covers every
            // OLEV; with random polling we require a longer streak so that
            // every OLEV has overwhelming probability of being included.
            let needed = match order {
                UpdateOrder::RoundRobin => n_olevs,
                UpdateOrder::Random { .. } => 4 * n_olevs,
            };
            if calm_streak >= needed {
                telemetry.counter("engine.converged", -1, 1);
                return Ok(Outcome {
                    converged: true,
                    updates,
                    trajectory,
                    degradation: report,
                    end_welfare: self.welfare(),
                });
            }
        }
        Ok(Outcome {
            converged: false,
            updates,
            trajectory,
            degradation: report,
            end_welfare: self.welfare(),
        })
    }

    /// Congestion degree of one section.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn section_congestion(&self, c: usize) -> f64 {
        self.state
            .schedule()
            .congestion_degree(SectionId(c), self.caps[c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GameBuilder;
    use crate::pricing::{LinearPricing, NonlinearPricing, PricingPolicy};
    use oes_units::Kilowatts;

    fn small_game() -> Game {
        GameBuilder::new()
            .sections(8, Kilowatts::new(60.0))
            .olevs(4, Kilowatts::new(50.0))
            .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
                15.0,
            )))
            .build()
            .expect("valid scenario")
    }

    #[test]
    fn run_converges_round_robin() {
        let mut g = small_game();
        let out = g.run(UpdateOrder::RoundRobin, 1000).unwrap();
        assert!(out.converged());
        assert!(out.updates() < 1000);
        assert!(out.final_welfare().is_finite());
    }

    #[test]
    fn run_converges_random_order_to_same_welfare() {
        let mut a = small_game();
        let mut b = small_game();
        let wa = a
            .run(UpdateOrder::RoundRobin, 2000)
            .unwrap()
            .final_welfare();
        let wb = b
            .run(UpdateOrder::Random { seed: 9 }, 2000)
            .unwrap()
            .final_welfare();
        // Theorem IV.1: the optimum is unique, so the order cannot matter.
        assert!((wa - wb).abs() < 1e-6, "{wa} vs {wb}");
    }

    #[test]
    fn welfare_is_monotone_along_best_responses() {
        // The exact-potential property in action: every best response can
        // only raise W.
        let mut g = small_game();
        let mut last = g.welfare();
        for k in 0..40 {
            g.update_olev(k % 4).unwrap();
            let w = g.welfare();
            assert!(
                w >= last - 1e-9,
                "welfare dropped at update {k}: {last} -> {w}"
            );
            last = w;
        }
    }

    #[test]
    fn nonlinear_equilibrium_is_load_balanced() {
        let mut g = small_game();
        g.run(UpdateOrder::RoundRobin, 2000).unwrap();
        let loads = g.section_loads();
        let min = loads.iter().fold(f64::INFINITY, |m, &l| m.min(l));
        let max = loads.iter().fold(0.0f64, |m, &l| m.max(l));
        assert!(max - min < 1e-6, "imbalance {min}..{max}");
    }

    #[test]
    fn linear_equilibrium_is_unbalanced() {
        let mut g = GameBuilder::new()
            .sections(8, Kilowatts::new(60.0))
            .olevs(4, Kilowatts::new(50.0))
            .pricing(PricingPolicy::Linear(LinearPricing::paper_default(15.0)))
            .build()
            .unwrap();
        g.run(UpdateOrder::RoundRobin, 2000).unwrap();
        let loads = g.section_loads();
        let min = loads.iter().fold(f64::INFINITY, |m, &l| m.min(l));
        let max = loads.iter().fold(0.0f64, |m, &l| m.max(l));
        assert!(
            max - min > 1.0,
            "greedy filling should be uneven: {loads:?}"
        );
    }

    #[test]
    fn unknown_olev_rejected() {
        let mut g = small_game();
        assert_eq!(g.update_olev(99), Err(GameError::UnknownOlev(99)));
    }

    #[test]
    fn reset_zeroes_the_schedule() {
        let mut g = small_game();
        g.run(UpdateOrder::RoundRobin, 100).unwrap();
        assert!(g.schedule().total() > 0.0);
        g.reset();
        assert_eq!(g.schedule().total(), 0.0);
        assert_eq!(g.system_congestion(), 0.0);
    }

    #[test]
    fn unit_payment_zero_without_allocation() {
        let g = small_game();
        assert_eq!(g.unit_payment_dollars_per_mwh(), 0.0);
    }

    #[test]
    fn trajectory_congestion_is_nondecreasing_from_cold_start() {
        // From the all-zero schedule, requests only grow toward equilibrium
        // in a symmetric scenario (Figs. 5(d)/6(d) show this ramp).
        let mut g = small_game();
        let out = g.run(UpdateOrder::RoundRobin, 500).unwrap();
        let first = out.trajectory.first().unwrap().congestion;
        let last = out.trajectory.last().unwrap().congestion;
        assert!(last >= first);
        assert!(out.updates_to_reach(0.95).is_some());
    }

    #[test]
    fn early_convergence_keeps_accumulated_degradation_counters() {
        // Regression: the convergence exit path used to return a fresh
        // `DegradationReport::default()`, wiping the per-update accounting.
        let mut g = small_game();
        let out = g.run(UpdateOrder::RoundRobin, 1000).unwrap();
        assert!(out.converged(), "must exercise the early-convergence path");
        assert_eq!(
            out.degradation().offers_sent,
            out.updates(),
            "one offer per update must survive the early return"
        );
        assert!(out.degradation().is_clean(), "in-process runs are clean");
    }

    #[test]
    fn instrumented_run_emits_per_update_metrics_without_changing_outcome() {
        use oes_telemetry::{RingBufferRecorder, Telemetry};
        use std::sync::Arc;

        let mut plain = small_game();
        let baseline = plain.run(UpdateOrder::RoundRobin, 1000).unwrap();

        let ring = Arc::new(RingBufferRecorder::new(1 << 14));
        let telemetry = Telemetry::new(ring.clone());
        let mut instrumented = small_game();
        let out = instrumented
            .run_with(UpdateOrder::RoundRobin, 1000, &telemetry)
            .unwrap();

        // Recorder neutrality: bit-identical trajectory and schedule.
        assert_eq!(out, baseline);
        assert_eq!(instrumented.schedule(), plain.schedule());

        let events = ring.events();
        let gauges = events.iter().filter(|e| e.name == "engine.welfare").count();
        assert_eq!(gauges, out.updates());
        let exits = events
            .iter()
            .filter(|e| {
                e.name == "engine.update"
                    && matches!(e.sample, oes_telemetry::Sample::SpanExit { .. })
            })
            .count();
        assert_eq!(exits, out.updates());
        assert_eq!(ring.counter_total("engine.converged"), 1);
        assert_eq!(
            ring.last_gauge("engine.welfare"),
            Some(baseline.final_welfare())
        );
    }

    #[test]
    fn outcome_updates_to_reach_handles_thresholds() {
        let mut g = small_game();
        let out = g.run(UpdateOrder::RoundRobin, 500).unwrap();
        let early = out.updates_to_reach(0.5).unwrap();
        let late = out.updates_to_reach(0.99).unwrap();
        assert!(early <= late);
    }

    #[test]
    fn zero_update_run_reports_current_welfare_without_panicking() {
        // Regression: `final_welfare()` used to panic on an empty trajectory.
        let mut g = small_game();
        let out = g.run(UpdateOrder::RoundRobin, 0).unwrap();
        assert_eq!(out.updates(), 0);
        assert!(!out.converged());
        assert!(out.trajectory.is_empty());
        assert_eq!(out.final_welfare().to_bits(), g.welfare().to_bits());
        assert_eq!(out.updates_to_reach(0.95), None);

        // Same from a warm start: the fallback is the *current* welfare, not
        // a hardcoded zero.
        g.run(UpdateOrder::RoundRobin, 50).unwrap();
        let warm = g.run(UpdateOrder::RoundRobin, 0).unwrap();
        assert!(warm.final_welfare() > 0.0);
        assert_eq!(warm.final_welfare().to_bits(), g.welfare().to_bits());
    }

    #[test]
    fn updates_to_reach_is_none_when_the_fleet_never_draws_power() {
        // Regression: a run whose final congestion is 0 used to report
        // `Some(1)` because the target `0 × fraction` was trivially met by
        // the first snapshot.
        let mut g = GameBuilder::new()
            .sections(4, Kilowatts::new(60.0))
            .olevs_weighted(2, Kilowatts::new(50.0), 1e-9)
            .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
                15.0,
            )))
            .build()
            .expect("valid scenario");
        let out = g.run(UpdateOrder::RoundRobin, 100).unwrap();
        assert!(out.updates() > 0, "the engine must actually poll the fleet");
        let last = out.trajectory.last().unwrap();
        assert_eq!(last.congestion, 0.0, "weightless fleet draws nothing");
        assert_eq!(out.updates_to_reach(0.95), None);
        // A zero-update run likewise has no ramp point.
        assert_eq!(out.updates_to_reach(0.0), None);
    }

    #[test]
    fn updates_to_reach_takes_the_last_crossing_on_non_monotone_trajectories() {
        let snap = |update, congestion| Snapshot {
            update,
            congestion,
            welfare: 0.0,
            change: 0.0,
        };
        // Transient spike above the final level, then a dip, then the ramp.
        let out = Outcome {
            converged: true,
            updates: 4,
            trajectory: vec![snap(1, 0.9), snap(2, 0.2), snap(3, 0.75), snap(4, 0.8)],
            degradation: crate::faults::DegradationReport::default(),
            end_welfare: 0.0,
        };
        // First crossing of 0.72 would be update 1 (the spike); the ramp that
        // *stays* above it starts at update 3.
        assert_eq!(out.updates_to_reach(0.9), Some(3));
        assert_eq!(out.updates_to_reach(1.0), Some(4));
    }

    #[test]
    fn incremental_welfare_matches_the_naive_path_along_a_run() {
        // The core refactor equivalence: the default resync interval must
        // land on the same equilibrium, update count, and welfare (within
        // 1e-9) as the resync-every-update configuration, which reproduces
        // the naive recompute path exactly.
        let mut cached = small_game();
        let mut naive = small_game();
        naive.set_welfare_resync_interval(1);
        let out_cached = cached.run(UpdateOrder::RoundRobin, 1000).unwrap();
        let out_naive = naive.run(UpdateOrder::RoundRobin, 1000).unwrap();
        assert_eq!(out_cached.converged(), out_naive.converged());
        assert_eq!(out_cached.updates(), out_naive.updates());
        assert!(
            (out_cached.final_welfare() - out_naive.final_welfare()).abs() < 1e-9,
            "{} vs {}",
            out_cached.final_welfare(),
            out_naive.final_welfare()
        );
        for (a, b) in out_cached.trajectory.iter().zip(&out_naive.trajectory) {
            assert!((a.welfare - b.welfare).abs() < 1e-9);
            assert!((a.congestion - b.congestion).abs() < 1e-9);
        }
        assert_eq!(cached.schedule(), naive.schedule());
    }
}
