//! A sans-IO session coordinator: the grid side of the offer/response
//! protocol, detached from any transport.
//!
//! [`crate::distributed`] runs the protocol over in-process crossbeam
//! channels with fault *injection*; a networked deployment runs the same
//! protocol over sockets with fault *reality*. This module factors the grid
//! coordinator's session machinery — round-robin offer dispatch, sequence
//! numbering, duplicate/stale discard, reply validation and clamping,
//! per-offer deadlines with bounded retries, graceful eviction into the
//! [`DegradationReport`] — into a pure state machine that consumes protocol
//! events and emits frames to send. The caller owns the wire.
//!
//! The contract that makes `oes-service` a *transport wrapper* rather than a
//! fork of the game logic: driven by a clean, ordered transport with one
//! outstanding offer (`window = 1`), this coordinator performs bit-for-bit
//! the same sequence of schedule applies as [`crate::DistributedGame`] — the
//! same offers in the same order, the same water-filling allocations, the
//! same [`Snapshot`] trajectory, the same convergence test. The workspace
//! chaos suite pins that equivalence.

use std::collections::{BTreeMap, HashSet};
use std::time::Duration;

use oes_telemetry::{Telemetry, TraceId, TraceIdGen};
use oes_units::{Kilowatts, OlevId};
use oes_wpt::v2i::{GridMessage, OlevMessage, V2iFrame};

use crate::engine::{Game, Outcome, Snapshot};
use crate::error::GameError;
use crate::faults::{DegradationReport, Eviction, EvictionReason};
use crate::payment::Scheduler;
use crate::pricing::SectionCost;
use crate::satisfaction::Satisfaction;
use crate::state::ScheduleState;

/// Invalid replies against one logical offer — or malformed frames from one
/// session — before it is evicted as misbehaving. Matches the in-process
/// runtimes' `MAX_INVALID_REPLIES`.
pub const MAX_STRIKES: u32 = 4;

/// Knobs of a [`SessionCoordinator`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Offers kept outstanding at once (1 = fully synchronous; the
    /// bit-identity contract with [`crate::DistributedGame`] holds at 1).
    pub window: usize,
    /// Base per-offer deadline; doubled per retry, capped at 32×.
    pub offer_timeout: Duration,
    /// Retransmissions of one logical offer before the session is evicted
    /// as unresponsive.
    pub retry_budget: u32,
    /// Best-response updates to run before stopping.
    pub max_updates: usize,
    /// Seed for the offer-lifecycle trace-id stream. Zero (the default)
    /// disables tracing entirely: frames carry trace 0 and journals stay
    /// byte-identical to the pre-trace format. Same seed ⇒ same trace tree.
    pub trace_seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            window: 1,
            offer_timeout: Duration::from_millis(250),
            retry_budget: 6,
            max_updates: 10_000,
            trace_seed: 0,
        }
    }
}

/// One offer transmission the caller should put on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct OutboundOffer {
    /// The addressed session / OLEV index.
    pub olev: usize,
    /// The transmission's sequence number (a retry gets a fresh one).
    pub seq: u64,
    /// Which retransmission of the logical offer this is (0 = first).
    pub attempt: u32,
    /// The causal trace of the logical offer — retries share it, and the
    /// reply (plus the closing `PaymentUpdate`) echo it.
    pub trace: TraceId,
    /// The payment-function offer frame.
    pub frame: V2iFrame<GridMessage>,
    /// Absolute expiry on the coordinator clock, microseconds.
    pub deadline_us: u64,
    /// The relative time budget the receiver is granted, microseconds —
    /// propagated so the client can refuse to answer a dead offer.
    pub budget_us: u64,
}

/// What [`SessionCoordinator::on_message`] did with an inbound frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyDisposition {
    /// The reply was accepted and applied to the schedule.
    Applied,
    /// The reply duplicated an already-applied sequence number.
    Duplicate,
    /// The reply answered an abandoned or unknown offer.
    Stale,
    /// The reply failed validation (strike issued, offer retried or the
    /// session evicted).
    Invalid,
    /// A `Hello` or `Goodbye` was tallied.
    Housekeeping,
}

/// The grid coordinator as a transport-free state machine.
///
/// Drive it with three inputs — [`pump`](Self::pump) for fresh offers,
/// [`on_message`](Self::on_message) for inbound frames,
/// [`expire`](Self::expire) for deadline sweeps — and it yields the frames
/// to transmit plus the same [`Outcome`] bookkeeping as the in-process
/// runtimes.
pub struct SessionCoordinator<'g> {
    cost: SectionCost,
    scheduler: Scheduler,
    caps: Vec<f64>,
    p_max: Vec<f64>,
    tolerance: f64,
    satisfactions: &'g [Box<dyn Satisfaction>],
    state: &'g mut ScheduleState,
    config: SessionConfig,
    telemetry: Telemetry,
    trace_gen: TraceIdGen,
    scratch_loads: Vec<f64>,

    alive: Vec<bool>,
    live: usize,
    last_evicted: usize,
    strikes: Vec<u32>,
    pending: BTreeMap<u64, PendingOffer>,
    abandoned: HashSet<u64>,
    accepted: HashSet<u64>,
    next_seq: u64,
    cursor: usize,
    issued: usize,
    updates: usize,
    calm_streak: usize,
    converged: bool,
    draining: bool,
    trajectory: Vec<Snapshot>,
    report: DegradationReport,
}

impl std::fmt::Debug for SessionCoordinator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionCoordinator")
            .field("live", &self.live)
            .field("issued", &self.issued)
            .field("updates", &self.updates)
            .field("pending", &self.pending.len())
            .field("converged", &self.converged)
            .field("draining", &self.draining)
            .finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct PendingOffer {
    olev: usize,
    attempt: u32,
    invalids: u32,
    trace: TraceId,
    sent_at_us: u64,
    deadline_us: u64,
}

impl<'g> SessionCoordinator<'g> {
    /// Wraps a game's schedule state for session-driven execution. One
    /// session per OLEV, all initially alive and detached from any wire.
    pub fn new(game: &'g mut Game, config: SessionConfig, telemetry: Telemetry) -> Self {
        let n = game.olev_count();
        let sections = game.section_count();
        Self {
            cost: game.cost,
            scheduler: game.scheduler,
            caps: game.caps.clone(),
            p_max: game.p_max.clone(),
            tolerance: game.tolerance,
            satisfactions: &game.satisfactions,
            state: &mut game.state,
            trace_gen: TraceIdGen::new(config.trace_seed),
            config,
            telemetry,
            scratch_loads: Vec::with_capacity(sections),
            alive: vec![true; n],
            live: n,
            last_evicted: 0,
            strikes: vec![0; n],
            pending: BTreeMap::new(),
            abandoned: HashSet::new(),
            accepted: HashSet::new(),
            next_seq: 1,
            cursor: 0,
            issued: 0,
            updates: 0,
            calm_streak: 0,
            converged: false,
            draining: false,
            trajectory: Vec::new(),
            report: DegradationReport::default(),
        }
    }

    /// Sessions still in the game.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Whether session `olev` is still in the game.
    #[must_use]
    pub fn alive(&self, olev: usize) -> bool {
        self.alive.get(olev).copied().unwrap_or(false)
    }

    /// Whether the convergence test has passed.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Best-response updates applied so far.
    #[must_use]
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Offers currently outstanding.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// The accounting so far.
    #[must_use]
    pub fn report(&self) -> &DegradationReport {
        &self.report
    }

    /// Whether the run is over: converged, out of update budget, or out of
    /// live sessions. Once true, [`pump`](Self::pump) issues nothing more.
    #[must_use]
    pub fn done(&self) -> bool {
        self.converged
            || self.live == 0
            || self.updates >= self.config.max_updates
            || (self.pending.is_empty() && self.issued >= self.config.max_updates)
    }

    /// Marks the run as draining: no new offers are issued, late goodbyes
    /// are tallied instead of treated as departures.
    pub fn drain(&mut self) {
        self.draining = true;
    }

    fn timeout_for(&self, attempt: u32) -> Duration {
        self.config.offer_timeout * 2u32.pow(attempt.min(5))
    }

    fn timeout_for_us(&self, attempt: u32) -> u64 {
        u64::try_from(self.timeout_for(attempt).as_micros()).unwrap_or(u64::MAX)
    }

    /// The next live session in round-robin order. Precondition: `live > 0`.
    fn next_live(&mut self) -> usize {
        while !self.alive[self.cursor] {
            self.cursor = (self.cursor + 1) % self.alive.len();
        }
        let pick = self.cursor;
        self.cursor = (self.cursor + 1) % self.alive.len();
        pick
    }

    fn make_offer(
        &mut self,
        olev: usize,
        attempt: u32,
        invalids: u32,
        trace: TraceId,
        now_us: u64,
    ) -> OutboundOffer {
        if attempt > 0 {
            self.report.retries += 1;
            self.telemetry
                .counter_traced("service.retry", olev as i64, trace, 1);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.state
            .loads_excluding_into(OlevId(olev), &mut self.scratch_loads);
        let loads_excl: Vec<Kilowatts> = self
            .scratch_loads
            .iter()
            .copied()
            .map(Kilowatts::new)
            .collect();
        let frame = V2iFrame::with_trace(
            seq,
            trace.0,
            GridMessage::PaymentFunction {
                id: OlevId(olev),
                loads_excl,
            },
        );
        self.report.offers_sent += 1;
        self.telemetry
            .counter_traced("service.offer", olev as i64, trace, 1);
        let budget_us = self.timeout_for_us(attempt);
        let deadline_us = now_us.saturating_add(budget_us);
        self.pending.insert(
            seq,
            PendingOffer {
                olev,
                attempt,
                invalids,
                trace,
                sent_at_us: now_us,
                deadline_us,
            },
        );
        OutboundOffer {
            olev,
            seq,
            attempt,
            trace,
            frame,
            deadline_us,
            budget_us,
        }
    }

    /// Fills the outstanding-offer window with fresh round-robin offers,
    /// appending the transmissions to `out`. No-op once the run is done or
    /// draining.
    pub fn pump(&mut self, now_us: u64, out: &mut Vec<OutboundOffer>) {
        if self.draining || self.done() {
            return;
        }
        let window = self.config.window.min(self.live).max(1);
        while self.pending.len() < window && self.issued < self.config.max_updates && self.live > 0
        {
            let olev = self.next_live();
            // A fresh logical offer starts a fresh causal trace; every
            // retry, reply, and the closing update inherit it.
            let trace = self.trace_gen.next_id();
            let offer = self.make_offer(olev, 0, 0, trace, now_us);
            self.issued += 1;
            out.push(offer);
        }
    }

    /// The earliest outstanding deadline, if any offer is in flight — the
    /// caller's wake-up hint.
    #[must_use]
    pub fn next_deadline_us(&self) -> Option<u64> {
        self.pending.values().map(|p| p.deadline_us).min()
    }

    /// Sweeps expired offers: each costs a timeout and is either retried
    /// (appended to `out`) or, past the retry budget, evicts its session.
    pub fn expire(&mut self, now_us: u64, out: &mut Vec<OutboundOffer>) {
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline_us <= now_us)
            .map(|(s, _)| *s)
            .collect();
        for seq in expired {
            let Some(p) = self.pending.remove(&seq) else {
                continue;
            };
            self.abandoned.insert(seq);
            self.report.timeouts += 1;
            self.telemetry
                .counter_traced("service.timeout", p.olev as i64, p.trace, 1);
            if !self.alive[p.olev] {
                continue;
            }
            if p.attempt >= self.config.retry_budget {
                self.evict_traced(p.olev, EvictionReason::Unresponsive, p.trace);
            } else {
                let offer = self.make_offer(p.olev, p.attempt + 1, p.invalids, p.trace, now_us);
                out.push(offer);
            }
        }
    }

    /// Evicts a session: zeroes its schedule row, abandons its in-flight
    /// offers, and shrinks the convergence quorum. Idempotent.
    pub fn evict(&mut self, olev: usize, reason: EvictionReason) {
        self.evict_traced(olev, reason, TraceId::NONE);
    }

    /// [`evict`](Self::evict) attributed to the causal trace of the offer
    /// whose failure triggered it.
    pub fn evict_traced(&mut self, olev: usize, reason: EvictionReason, trace: TraceId) {
        if olev >= self.alive.len() || !self.alive[olev] {
            return;
        }
        self.alive[olev] = false;
        self.live -= 1;
        self.last_evicted = olev;
        self.state.apply_row(
            OlevId(olev),
            &vec![0.0; self.caps.len()],
            self.satisfactions,
            &self.cost,
            &self.caps,
        );
        let in_flight: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.olev == olev)
            .map(|(s, _)| *s)
            .collect();
        for seq in in_flight {
            self.pending.remove(&seq);
            self.abandoned.insert(seq);
        }
        self.calm_streak = 0;
        self.telemetry
            .counter_traced("service.evicted", olev as i64, trace, 1);
        self.report.evictions.push(Eviction {
            olev,
            at_update: self.updates,
            reason,
        });
    }

    /// Issues a strike against a session that sent garbage the framing or
    /// codec layer rejected; [`MAX_STRIKES`] strikes evict it as
    /// misbehaving. Frame-level damage is indistinguishable from an invalid
    /// reply at the protocol level, so it shares the counter.
    pub fn strike_malformed(&mut self, olev: usize) {
        if olev >= self.alive.len() || !self.alive[olev] {
            return;
        }
        self.report.invalid_replies += 1;
        self.telemetry.counter("service.malformed", olev as i64, 1);
        self.strikes[olev] += 1;
        if self.strikes[olev] >= MAX_STRIKES {
            self.evict(olev, EvictionReason::Misbehaving);
        }
    }

    fn validate(total: f64) -> Result<(), String> {
        if !total.is_finite() {
            return Err(format!("total {total} is not finite"));
        }
        if total < 0.0 {
            return Err(format!("total {total} is negative"));
        }
        Ok(())
    }

    /// Applies an accepted best response exactly as the in-process engines
    /// do, and returns the `PaymentUpdate` to close the loop with.
    fn apply(
        &mut self,
        olev: usize,
        seq: u64,
        trace: TraceId,
        total: f64,
    ) -> V2iFrame<GridMessage> {
        let id = OlevId(olev);
        self.state.loads_excluding_into(id, &mut self.scratch_loads);
        let allocation =
            self.scheduler
                .allocate(&self.cost, &self.caps, &self.scratch_loads, total);
        let before = self.state.schedule().olev_total(id);
        self.state.apply_row(
            id,
            &allocation.shares,
            self.satisfactions,
            &self.cost,
            &self.caps,
        );
        let change = (total - before).abs();
        self.updates += 1;
        let snapshot = Snapshot {
            update: self.updates,
            congestion: self.state.schedule().system_congestion(&self.caps),
            welfare: self.state.welfare(),
            change,
        };
        self.trajectory.push(snapshot);
        if change < self.tolerance {
            self.calm_streak += 1;
        } else {
            self.calm_streak = 0;
        }
        let extra = if self.config.window == 1 {
            0
        } else {
            self.config.window
        };
        if self.calm_streak >= self.live + extra {
            self.converged = true;
        }
        let allocated = Kilowatts::new(self.state.schedule().olev_total(id));
        V2iFrame::with_trace(
            seq,
            trace.0,
            GridMessage::PaymentUpdate {
                id,
                marginal_price: allocation.marginal,
                allocated,
            },
        )
    }

    /// Consumes one inbound frame. An accepted `PowerRequest` appends the
    /// closing `PaymentUpdate` for its session to `out`; an invalid one
    /// appends the retry offer (or evicts). `Hello`/`Goodbye` are tallied —
    /// a mid-run `Goodbye` is a voluntary departure and evicts gracefully.
    pub fn on_message(
        &mut self,
        frame: V2iFrame<OlevMessage>,
        now_us: u64,
        out: &mut Vec<OutboundOffer>,
        updates_out: &mut Vec<(usize, V2iFrame<GridMessage>)>,
    ) -> ReplyDisposition {
        let (id, total) = match frame.payload {
            OlevMessage::Hello { .. } => {
                self.report.hellos += 1;
                return ReplyDisposition::Housekeeping;
            }
            OlevMessage::Goodbye { id } => {
                self.report.goodbyes += 1;
                if !self.draining && !self.done() {
                    self.evict(id.0, EvictionReason::Departed);
                }
                return ReplyDisposition::Housekeeping;
            }
            OlevMessage::PowerRequest { id, total } => (id, total.value()),
        };
        let seq = frame.seq;
        // Duplicates and stale replies have no pending entry; the frame's
        // echoed trace (if any) still attributes them to their lifecycle.
        let echoed = TraceId(frame.trace);
        if self.accepted.contains(&seq) {
            self.report.duplicates += 1;
            self.telemetry
                .counter_traced("service.duplicate", id.0 as i64, echoed, 1);
            return ReplyDisposition::Duplicate;
        }
        let Some(p) = self.pending.get(&seq) else {
            self.report.stale += 1;
            self.telemetry
                .counter_traced("service.stale", id.0 as i64, echoed, 1);
            return ReplyDisposition::Stale;
        };
        let (olev, attempt, invalids, trace, sent_at_us) =
            (p.olev, p.attempt, p.invalids, p.trace, p.sent_at_us);
        let fault = if id.0 != olev {
            Some(format!(
                "reply claims OLEV {} for OLEV {olev}'s offer",
                id.0
            ))
        } else {
            Self::validate(total).err()
        };
        if fault.is_some() {
            self.pending.remove(&seq);
            self.abandoned.insert(seq);
            self.report.invalid_replies += 1;
            self.telemetry
                .counter_traced("service.invalid_reply", olev as i64, trace, 1);
            if invalids + 1 >= MAX_STRIKES {
                self.evict_traced(olev, EvictionReason::Misbehaving, trace);
            } else if attempt >= self.config.retry_budget {
                self.evict_traced(olev, EvictionReason::Unresponsive, trace);
            } else {
                let offer = self.make_offer(olev, attempt + 1, invalids + 1, trace, now_us);
                out.push(offer);
            }
            return ReplyDisposition::Invalid;
        }
        // Accept. Clamp an over-ask to the OLEV's physical bound P_OLEV.
        let bound = self.p_max[olev];
        let total = if total > bound {
            if total > bound + 1e-9 {
                self.report.clamped_replies += 1;
                self.telemetry
                    .counter_traced("service.clamped_reply", olev as i64, trace, 1);
            }
            bound
        } else {
            total
        };
        self.pending.remove(&seq);
        self.accepted.insert(seq);
        let update = self.apply(olev, seq, trace, total);
        self.telemetry
            .counter_traced("service.accepted", olev as i64, trace, 1);
        self.telemetry.histogram_traced(
            "service.latency",
            olev as i64,
            trace,
            now_us.saturating_sub(sent_at_us) as f64,
        );
        updates_out.push((olev, update));
        ReplyDisposition::Applied
    }

    /// Finishes the run, handing the schedule state back to the game.
    ///
    /// # Errors
    ///
    /// [`GameError::OlevEvicted`] if every session was evicted — a game with
    /// no live players has no welfare to optimize. Mirrors the in-process
    /// runtimes, which return the error alone; callers needing the partial
    /// accounting should copy [`Self::report`] before finishing.
    pub fn finish(self) -> Result<Outcome, GameError> {
        if self.live == 0 {
            return Err(GameError::OlevEvicted(self.last_evicted));
        }
        Ok(Outcome {
            converged: self.converged,
            updates: self.updates,
            trajectory: self.trajectory,
            degradation: self.report,
            end_welfare: self.state.welfare(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GameBuilder;
    use crate::distributed::DistributedGame;

    fn build(sections: usize, olevs: usize) -> Game {
        GameBuilder::new()
            .sections(sections, Kilowatts::new(60.0))
            .olevs(olevs, Kilowatts::new(50.0))
            .build()
            .unwrap()
    }

    /// Drives the coordinator with a perfect in-process echo "network":
    /// every offer is answered immediately with the true best response.
    /// `oracle` is a structurally identical game supplying the vehicles'
    /// private satisfaction functions.
    fn run_echo(
        game: &mut Game,
        oracle: &Game,
        config: SessionConfig,
    ) -> Result<Outcome, GameError> {
        let n = game.olev_count();
        let cost = *game.cost();
        let caps = game.caps().to_vec();
        let p_max = game.p_max().to_vec();
        let scheduler = game.scheduler();
        let sats = oracle.satisfactions();
        let mut core = SessionCoordinator::new(game, config, Telemetry::disabled());
        // The paper's bring-up handshake.
        let mut offers = Vec::new();
        let mut updates = Vec::new();
        for olev in 0..n {
            let hello = OlevMessage::Hello {
                id: OlevId(olev),
                velocity: oes_units::MetersPerSecond::new(0.0),
                soc: oes_units::StateOfCharge::EMPTY,
                soc_required: oes_units::StateOfCharge::FULL,
            };
            core.on_message(V2iFrame::new(0, hello), 0, &mut offers, &mut updates);
        }
        while !core.done() {
            offers.clear();
            core.pump(0, &mut offers);
            if offers.is_empty() {
                break;
            }
            let round: Vec<OutboundOffer> = offers.drain(..).collect();
            for offer in round {
                let GridMessage::PaymentFunction { id, loads_excl } = &offer.frame.payload else {
                    panic!("offers carry payment functions");
                };
                let loads: Vec<f64> = loads_excl.iter().map(|kw| kw.value()).collect();
                let br = crate::best_response::best_response(
                    sats[id.0].as_ref(),
                    &cost,
                    &caps,
                    &loads,
                    p_max[id.0],
                    scheduler,
                );
                let reply = OlevMessage::PowerRequest {
                    id: *id,
                    total: Kilowatts::new(br.total),
                };
                let mut extra = Vec::new();
                core.on_message(V2iFrame::new(offer.seq, reply), 0, &mut extra, &mut updates);
                assert!(extra.is_empty(), "clean replies never trigger retries");
            }
        }
        core.drain();
        for olev in 0..n {
            core.on_message(
                V2iFrame::new(0, OlevMessage::Goodbye { id: OlevId(olev) }),
                0,
                &mut offers,
                &mut updates,
            );
        }
        core.finish()
    }

    #[test]
    fn echo_run_is_bit_identical_to_the_distributed_runtime() {
        let mut a = build(6, 4);
        let mut b = build(6, 4);
        let oracle = build(6, 4);
        let via_core = run_echo(&mut a, &oracle, SessionConfig::default()).unwrap();
        let via_threads = DistributedGame::new(&mut b).run(10_000).unwrap();
        assert_eq!(via_core, via_threads, "same protocol, same trajectory");
        assert_eq!(a.welfare().to_bits(), b.welfare().to_bits());
        for (la, lb) in a.section_loads().iter().zip(b.section_loads()) {
            assert_eq!(la.to_bits(), lb.to_bits());
        }
    }

    #[test]
    fn expiry_retries_then_evicts_unresponsive_sessions() {
        let mut game = build(4, 2);
        let config = SessionConfig {
            retry_budget: 2,
            offer_timeout: Duration::from_millis(10),
            ..SessionConfig::default()
        };
        let mut core = SessionCoordinator::new(&mut game, config, Telemetry::disabled());
        let mut offers = Vec::new();
        let mut now = 0u64;
        core.pump(now, &mut offers);
        assert_eq!(offers.len(), 1);
        // Never answer; advance past each deadline in turn.
        let mut retries = 0;
        loop {
            let Some(deadline) = core.next_deadline_us() else {
                break;
            };
            now = deadline + 1;
            let mut retrans = Vec::new();
            core.expire(now, &mut retrans);
            retries += retrans.len();
            if core.report().evictions.len() == 1 {
                break;
            }
        }
        assert_eq!(retries, 2, "retry budget of 2 yields 2 retransmissions");
        let report = core.report();
        assert_eq!(report.evictions.len(), 1);
        assert_eq!(report.evictions[0].olev, 0);
        assert!(matches!(
            report.evictions[0].reason,
            EvictionReason::Unresponsive
        ));
        assert_eq!(report.timeouts, 3, "initial send plus two retries expired");
    }

    #[test]
    fn duplicate_and_stale_replies_are_discarded() {
        let mut game = build(4, 2);
        let mut core =
            SessionCoordinator::new(&mut game, SessionConfig::default(), Telemetry::disabled());
        let mut offers = Vec::new();
        let mut updates = Vec::new();
        core.pump(0, &mut offers);
        let offer = offers[0].clone();
        let reply = |seq: u64| {
            V2iFrame::new(
                seq,
                OlevMessage::PowerRequest {
                    id: OlevId(offer.olev),
                    total: Kilowatts::new(10.0),
                },
            )
        };
        assert_eq!(
            core.on_message(reply(offer.seq), 0, &mut offers, &mut updates),
            ReplyDisposition::Applied
        );
        assert_eq!(
            core.on_message(reply(offer.seq), 0, &mut offers, &mut updates),
            ReplyDisposition::Duplicate
        );
        assert_eq!(
            core.on_message(reply(9999), 0, &mut offers, &mut updates),
            ReplyDisposition::Stale
        );
        assert_eq!(core.report().duplicates, 1);
        assert_eq!(core.report().stale, 1);
    }

    #[test]
    fn malformed_strikes_evict_after_the_limit() {
        let mut game = build(4, 3);
        let mut core =
            SessionCoordinator::new(&mut game, SessionConfig::default(), Telemetry::disabled());
        for _ in 0..MAX_STRIKES {
            core.strike_malformed(1);
        }
        assert!(!core.alive(1));
        assert_eq!(core.report().invalid_replies, MAX_STRIKES as usize);
        assert!(matches!(
            core.report().evictions[0].reason,
            EvictionReason::Misbehaving
        ));
        // Striking an already-evicted session is a no-op.
        core.strike_malformed(1);
        assert_eq!(core.report().evictions.len(), 1);
    }

    #[test]
    fn mid_run_goodbye_is_a_graceful_departure() {
        let mut game = build(4, 3);
        let mut core =
            SessionCoordinator::new(&mut game, SessionConfig::default(), Telemetry::disabled());
        let mut offers = Vec::new();
        let mut updates = Vec::new();
        core.pump(0, &mut offers);
        core.on_message(
            V2iFrame::new(0, OlevMessage::Goodbye { id: OlevId(2) }),
            0,
            &mut offers,
            &mut updates,
        );
        assert!(!core.alive(2));
        assert_eq!(core.live(), 2);
        assert!(matches!(
            core.report().evictions[0].reason,
            EvictionReason::Departed
        ));
        assert_eq!(core.report().goodbyes, 1);
    }

    #[test]
    fn traces_span_the_offer_lifecycle() {
        let mut game = build(4, 2);
        let config = SessionConfig {
            trace_seed: 7,
            offer_timeout: Duration::from_millis(10),
            ..SessionConfig::default()
        };
        let mut core = SessionCoordinator::new(&mut game, config, Telemetry::disabled());
        let mut offers = Vec::new();
        let mut updates = Vec::new();
        core.pump(0, &mut offers);
        let first = offers[0].clone();
        assert!(first.trace.is_some(), "seeded runs trace every offer");
        assert_eq!(first.frame.trace, first.trace.0, "frame carries the trace");
        // Let it expire: the retry keeps the trace under a fresh seq.
        offers.clear();
        core.expire(first.deadline_us + 1, &mut offers);
        let retry = offers[0].clone();
        assert_eq!(retry.trace, first.trace);
        assert_ne!(retry.seq, first.seq);
        assert_eq!(retry.attempt, 1);
        // Answer the retry: the closing update echoes the same trace.
        let reply = V2iFrame::with_trace(
            retry.seq,
            retry.frame.trace,
            OlevMessage::PowerRequest {
                id: OlevId(retry.olev),
                total: Kilowatts::new(10.0),
            },
        );
        offers.clear();
        core.on_message(reply, 0, &mut offers, &mut updates);
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].1.trace, first.trace.0);
        // A second logical offer gets a distinct trace.
        offers.clear();
        core.pump(0, &mut offers);
        assert_ne!(offers[0].trace, first.trace);
        assert!(offers[0].trace.is_some());
    }

    #[test]
    fn same_seed_runs_emit_identical_trace_streams() {
        let traces_of = |seed: u64| -> Vec<u64> {
            let mut game = build(4, 2);
            let config = SessionConfig {
                trace_seed: seed,
                ..SessionConfig::default()
            };
            let mut core = SessionCoordinator::new(&mut game, config, Telemetry::disabled());
            let mut out = Vec::new();
            let mut updates = Vec::new();
            let mut traces = Vec::new();
            for round in 0..6u64 {
                out.clear();
                core.pump(round, &mut out);
                for offer in &out {
                    traces.push(offer.trace.0);
                    let reply = V2iFrame::with_trace(
                        offer.seq,
                        offer.frame.trace,
                        OlevMessage::PowerRequest {
                            id: OlevId(offer.olev),
                            total: Kilowatts::new(5.0),
                        },
                    );
                    core.on_message(reply.clone(), round, &mut Vec::new(), &mut updates);
                }
            }
            traces
        };
        assert_eq!(traces_of(42), traces_of(42));
        assert_ne!(traces_of(42), traces_of(43));
        assert!(traces_of(0).iter().all(|&t| t == 0), "zero seed = untraced");
    }

    #[test]
    fn all_evicted_finishes_with_an_error() {
        let mut game = build(4, 2);
        let mut core =
            SessionCoordinator::new(&mut game, SessionConfig::default(), Telemetry::disabled());
        core.evict(0, EvictionReason::Unresponsive);
        core.evict(1, EvictionReason::Unresponsive);
        assert!(core.done());
        match core.finish() {
            Err(GameError::OlevEvicted(last)) => assert_eq!(last, 1),
            other => panic!("expected OlevEvicted, got {other:?}"),
        }
    }
}
