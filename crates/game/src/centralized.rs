//! A centralized ground-truth solver.
//!
//! Theorem IV.1 claims the decentralized best-response dynamics reach the
//! maximizer of the social welfare `W`. This module maximizes `W` directly —
//! projected gradient ascent on the full `N × C` schedule — with no game,
//! no payments, and no privacy, purely as an independent check that the
//! decentralized engine lands on the same optimum (tested in the
//! integration suite).

use oes_units::OlevId;

use crate::engine::Game;
use crate::schedule::PowerSchedule;
use crate::state::ScheduleState;

/// The solver's result.
#[derive(Debug, Clone, PartialEq)]
pub struct CentralizedSolution {
    /// The welfare-maximizing schedule found.
    pub schedule: PowerSchedule,
    /// `W` at that schedule.
    pub welfare: f64,
    /// Gradient iterations performed.
    pub iterations: usize,
    /// Whether the welfare improvement fell below tolerance before the
    /// iteration budget ran out.
    pub converged: bool,
}

/// Maximizes `W` by projected gradient ascent over
/// `{p ≥ 0, Σ_c p_{n,c} ≤ P_OLEV_n}`.
///
/// `∂W/∂p_{n,c} = U'_n(p_n) − Z'(P_c)`; after each ascent step every row is
/// projected onto its capped simplex.
#[must_use]
pub fn solve_centralized(game: &Game, max_iterations: usize) -> CentralizedSolution {
    let n_olevs = game.olev_count();
    let n_sections = game.section_count();
    let caps = game.caps();
    let cost = game.cost();
    // The incremental state keeps the per-sweep welfare check O(1) and the
    // loads cached, instead of an O(N·C) recompute per iteration.
    let mut state = ScheduleState::new(
        PowerSchedule::zeros(n_olevs, n_sections),
        game.satisfactions(),
        cost,
        caps,
    );

    // A conservative step size from the objective's curvature bounds:
    // |U''| ≤ max weight (≤ U'(0)) and Z'' is β̃/K plus the overload term.
    let max_u_curvature: f64 = game
        .satisfactions()
        .iter()
        .map(|s| s.derivative(0.0))
        .fold(1.0, f64::max);
    let max_z_curvature: f64 = caps
        .iter()
        .map(|&cap| {
            let knee = cost.knee(cap);
            // Finite-difference curvature just past the knee (worst case).
            let h = 1e-3;
            (cost.z_prime(knee + h, cap) - cost.z_prime(knee, cap)) / h
        })
        .fold(0.0, f64::max);
    let lipschitz = max_u_curvature + max_z_curvature * n_olevs as f64;
    let step = 0.9 / lipschitz.max(1e-9);

    let mut welfare = state.welfare();
    let mut converged = false;
    let mut iterations = 0;
    let mut row = vec![0.0; n_sections];
    // The gradient is evaluated Jacobi-style against the loads at the start
    // of the sweep, while rows update sequentially — snapshot them.
    let mut loads = vec![0.0; n_sections];
    for it in 0..max_iterations {
        iterations = it + 1;
        loads.copy_from_slice(state.schedule().loads());
        for n in 0..n_olevs {
            let id = OlevId(n);
            let p_n = state.schedule().olev_total(id);
            let u_prime = game.satisfactions()[n].derivative(p_n);
            for c in 0..n_sections {
                let grad = u_prime - cost.z_prime(loads[c], caps[c]);
                row[c] = state.schedule().get(id, oes_units::SectionId(c)) + step * grad;
            }
            project_capped_simplex(&mut row, game.p_max()[n]);
            state.apply_row(id, &row, game.satisfactions(), cost, caps);
        }
        let new_welfare = state.welfare();
        if (new_welfare - welfare).abs() < 1e-9 * welfare.abs().max(1.0) && it > 10 {
            welfare = new_welfare;
            converged = true;
            break;
        }
        welfare = new_welfare;
    }
    CentralizedSolution {
        schedule: state.into_schedule(),
        welfare,
        iterations,
        converged,
    }
}

/// Euclidean projection onto `{x ≥ 0, Σx ≤ budget}` in place.
///
/// If clamping negatives already satisfies the budget, that is the
/// projection; otherwise project onto the simplex `Σx = budget` via the
/// standard water-shift `x_i = max(0, v_i − θ)` with θ found by bisection.
fn project_capped_simplex(v: &mut [f64], budget: f64) {
    let clamped_sum: f64 = v.iter().map(|x| x.max(0.0)).sum();
    if clamped_sum <= budget {
        for x in v.iter_mut() {
            *x = x.max(0.0);
        }
        return;
    }
    let (mut lo, mut hi) = (0.0, v.iter().fold(0.0f64, |m, &x| m.max(x)));
    for _ in 0..100 {
        let theta = 0.5 * (lo + hi);
        let s: f64 = v.iter().map(|&x| (x - theta).max(0.0)).sum();
        if s > budget {
            lo = theta;
        } else {
            hi = theta;
        }
    }
    let theta = 0.5 * (lo + hi);
    for x in v.iter_mut() {
        *x = (*x - theta).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GameBuilder;
    use crate::engine::UpdateOrder;
    use oes_units::Kilowatts;

    #[test]
    fn projection_is_identity_inside_the_set() {
        let mut v = vec![1.0, 2.0, -0.5];
        project_capped_simplex(&mut v, 10.0);
        assert_eq!(v, vec![1.0, 2.0, 0.0]);
    }

    #[test]
    fn projection_hits_the_budget_exactly_when_binding() {
        let mut v = vec![5.0, 5.0, 5.0];
        project_capped_simplex(&mut v, 6.0);
        let sum: f64 = v.iter().sum();
        assert!((sum - 6.0).abs() < 1e-6);
        // Symmetric input stays symmetric.
        assert!((v[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn projection_preserves_ordering() {
        let mut v = vec![9.0, 1.0, 4.0];
        project_capped_simplex(&mut v, 5.0);
        assert!(v[0] > v[2] && v[2] >= v[1]);
    }

    #[test]
    fn centralized_matches_decentralized_welfare() {
        // The headline check on Theorem IV.1 at unit-test scale.
        let build = || {
            GameBuilder::new()
                .sections(6, Kilowatts::new(60.0))
                .olevs(3, Kilowatts::new(80.0))
                .build()
                .unwrap()
        };
        let mut game = build();
        game.run(UpdateOrder::RoundRobin, 3000).unwrap();
        let decentralized = game.welfare();
        let central = solve_centralized(&build(), 20_000);
        assert!(
            (decentralized - central.welfare).abs() < 1e-3 * decentralized.abs().max(1.0),
            "decentralized {decentralized} vs centralized {}",
            central.welfare
        );
    }

    #[test]
    fn centralized_respects_bounds() {
        let game = GameBuilder::new()
            .sections(4, Kilowatts::new(60.0))
            .olevs(2, Kilowatts::new(10.0))
            .build()
            .unwrap();
        let sol = solve_centralized(&game, 5000);
        for n in 0..2 {
            let total = sol.schedule.olev_total(OlevId(n));
            assert!(total <= 10.0 + 1e-6, "row {n} exceeds p_max: {total}");
        }
    }
}
