//! The smart grid's cost-minimizing schedulers.
//!
//! **Water-filling (Lemma IV.1).** For a strictly convex `Z`, the schedule
//! minimizing `Σ_c Z(P_{-n,c} + p_{n,c})` subject to `Σ_c p_{n,c} = p_n`
//! equalizes marginal costs across the touched sections: there is a unique
//! level such that `p_{n,c} = [x_c(μ*) − P_{-n,c}]⁺` with `Z'(x_c(μ*)) = μ*`.
//! With identical sections this reduces to the paper's load-level form
//! `p_{n,c} = [λ* − P_{-n,c}]⁺` (Eq. 12), and the level is found by bisection
//! exactly as Section IV.F prescribes, since `Y(λ) = Σ_c [λ − P_{-n,c}]⁺`
//! (Eq. 24) is strictly increasing past the smallest load.
//!
//! **Greedy filling.** Under the linear baseline `Z'` is flat below the knee,
//! the minimizer is not unique, and nothing pushes the grid to balance; this
//! fallback fills sections in index order — producing the load imbalance the
//! paper observes in Figs. 5(c)/6(c).

use crate::pricing::SectionCost;

/// Bisection iteration budget; enough for ~1e-18 relative precision.
const BISECT_ITERS: usize = 60;

/// One grid-side allocation of a total request across sections.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Per-section shares (kW), summing to the requested total.
    pub shares: Vec<f64>,
    /// The marginal price of the last unit allocated — `Z'` at the water
    /// level for water-filling, `Z'` at the last touched section for greedy.
    pub marginal: f64,
}

impl Allocation {
    /// Total allocated power.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.shares.iter().sum()
    }
}

/// The paper's `Y(x) = Σ_c [x − P_{-n,c}]⁺` (Eq. 24).
#[must_use]
pub fn y_function(loads: &[f64], level: f64) -> f64 {
    loads.iter().map(|&l| (level - l).max(0.0)).sum()
}

/// Finds the unique load level `λ*` with `Y(λ*) = total` by bisection
/// (Section IV.F).
///
/// # Panics
///
/// Panics if `loads` is empty, `total` is negative, or any value is not
/// finite.
#[must_use]
pub fn water_level(loads: &[f64], total: f64) -> f64 {
    assert!(!loads.is_empty(), "need at least one section");
    assert!(
        total >= 0.0 && total.is_finite(),
        "total must be non-negative"
    );
    assert!(
        loads.iter().all(|l| l.is_finite() && *l >= 0.0),
        "loads must be non-negative"
    );
    let lo0 = loads.iter().fold(f64::INFINITY, |m, &l| m.min(l));
    if total == 0.0 {
        return lo0;
    }
    let (mut lo, mut hi) = (lo0, loads.iter().fold(0.0f64, |m, &l| m.max(l)) + total);
    for _ in 0..BISECT_ITERS {
        let mid = 0.5 * (lo + hi);
        if y_function(loads, mid) < total {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Eq. 12: the load-level water-filling schedule `[λ* − P_{-n,c}]⁺` for
/// identical sections.
#[must_use]
pub fn waterfill(loads: &[f64], total: f64) -> Vec<f64> {
    let level = water_level(loads, total);
    let mut shares: Vec<f64> = loads.iter().map(|&l| (level - l).max(0.0)).collect();
    renormalize(&mut shares, total);
    shares
}

/// Marginal-cost water-filling for (possibly) heterogeneous sections: finds
/// `μ*` such that `Σ_c [x_c(μ*) − load_c]⁺ = total`, where `Z'(x_c) = μ*`.
///
/// Requires a strictly convex cost ([`SectionCost::supports_waterfilling`]).
///
/// # Panics
///
/// Panics on empty inputs, mismatched lengths, a negative total, or a cost
/// without strict convexity.
#[must_use]
pub fn marginal_waterfill(
    cost: &SectionCost,
    caps: &[f64],
    loads: &[f64],
    total: f64,
) -> Allocation {
    assert!(!caps.is_empty(), "need at least one section");
    assert_eq!(caps.len(), loads.len(), "caps/loads length mismatch");
    assert!(
        total >= 0.0 && total.is_finite(),
        "total must be non-negative"
    );
    assert!(
        cost.supports_waterfilling(),
        "water-filling needs a strictly convex cost"
    );

    let mu_at = |c: usize, x: f64| cost.z_prime(x, caps[c]);
    let mu_lo = (0..caps.len())
        .map(|c| mu_at(c, loads[c]))
        .fold(f64::INFINITY, f64::min);
    if total == 0.0 {
        return Allocation {
            shares: vec![0.0; caps.len()],
            marginal: mu_lo,
        };
    }
    let mu_hi = (0..caps.len())
        .map(|c| mu_at(c, loads[c] + total))
        .fold(0.0f64, f64::max);

    // x_c(μ): the load at which section c's marginal cost reaches μ,
    // clamped to [load_c, load_c + total]. Uses the closed-form Z'⁻¹ when
    // the cost admits one, falling back to bisection.
    let x_of_mu = |c: usize, mu: f64| -> f64 {
        if mu_at(c, loads[c]) >= mu {
            return loads[c];
        }
        if let Some(x) = cost.z_prime_inverse(mu, caps[c]) {
            return x.clamp(loads[c], loads[c] + total);
        }
        let (mut lo, mut hi) = (loads[c], loads[c] + total);
        for _ in 0..BISECT_ITERS {
            let mid = 0.5 * (lo + hi);
            if mu_at(c, mid) < mu {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };
    let allocated = |mu: f64| -> f64 { (0..caps.len()).map(|c| x_of_mu(c, mu) - loads[c]).sum() };

    let (mut lo, mut hi) = (mu_lo, mu_hi);
    for _ in 0..BISECT_ITERS {
        let mid = 0.5 * (lo + hi);
        if allocated(mid) < total {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let mu = 0.5 * (lo + hi);
    let mut shares: Vec<f64> = (0..caps.len()).map(|c| x_of_mu(c, mu) - loads[c]).collect();
    renormalize(&mut shares, total);
    Allocation {
        shares,
        marginal: mu,
    }
}

/// The total the water-filling grid hands out at marginal price `μ`:
/// `A(μ) = Σ_c [x_c(μ) − load_c]⁺` with `Z'(x_c(μ)) = μ` — the inverse of
/// the [`marginal_waterfill`] level search, evaluated through the closed-form
/// `Z'⁻¹`. Returns `None` when the cost has no closed-form inverse (the
/// linear baseline), in which case callers fall back to solving in
/// total-request space.
///
/// `A` is non-decreasing in `μ`, which is what makes the best response's
/// first-order condition solvable by a *single* bisection in `μ` (see
/// [`crate::best_response()`]) instead of a bisection whose every probe runs a
/// full water-filling level search.
#[must_use]
pub fn demand_at_marginal(cost: &SectionCost, caps: &[f64], loads: &[f64], mu: f64) -> Option<f64> {
    let mut total = 0.0;
    for (&cap, &load) in caps.iter().zip(loads) {
        if cost.z_prime(load, cap) >= mu {
            continue; // this section is already at or above the price level
        }
        let x = cost.z_prime_inverse(mu, cap)?;
        total += (x - load).max(0.0);
    }
    Some(total)
}

/// Greedy sequential filling for the linear baseline: fill each section in
/// index order up to its knee; spill any remainder evenly beyond the knees.
///
/// # Panics
///
/// Panics on empty inputs, mismatched lengths, or a negative total.
#[must_use]
pub fn greedy_fill(cost: &SectionCost, caps: &[f64], loads: &[f64], total: f64) -> Allocation {
    assert!(!caps.is_empty(), "need at least one section");
    assert_eq!(caps.len(), loads.len(), "caps/loads length mismatch");
    assert!(
        total >= 0.0 && total.is_finite(),
        "total must be non-negative"
    );

    let mut shares = vec![0.0; caps.len()];
    let mut remaining = total;
    let mut last_touched = 0;
    for c in 0..caps.len() {
        if remaining <= 0.0 {
            break;
        }
        let headroom = (cost.knee(caps[c]) - loads[c]).max(0.0);
        let take = headroom.min(remaining);
        if take > 0.0 {
            shares[c] = take;
            remaining -= take;
            last_touched = c;
        }
    }
    if remaining > 1e-12 {
        // Every knee is full: spill evenly (the overload cost then punishes
        // everyone alike, and the next best responses shrink requests).
        let spill = remaining / caps.len() as f64;
        for s in shares.iter_mut() {
            *s += spill;
        }
        last_touched = (0..caps.len())
            .max_by(|&a, &b| {
                let za = cost.z_prime(loads[a] + shares[a], caps[a]);
                let zb = cost.z_prime(loads[b] + shares[b], caps[b]);
                za.partial_cmp(&zb).expect("costs are finite")
            })
            .expect("nonempty");
    }
    let marginal = cost.z_prime(
        loads[last_touched] + shares[last_touched],
        caps[last_touched],
    );
    Allocation { shares, marginal }
}

/// Scales shares so they sum to exactly `total` (bisection leaves ~1e-12
/// residue that would otherwise accumulate over thousands of updates).
fn renormalize(shares: &mut [f64], total: f64) {
    let sum: f64 = shares.iter().sum();
    if sum > 0.0 && total > 0.0 {
        let scale = total / sum;
        for s in shares.iter_mut() {
            *s *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::{LinearPricing, NonlinearPricing, OverloadPenalty, PricingPolicy};

    fn nl_cost() -> SectionCost {
        SectionCost::new(
            PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
            OverloadPenalty::new(0.15),
            0.9,
        )
    }

    fn lin_cost() -> SectionCost {
        SectionCost::new(
            PricingPolicy::Linear(LinearPricing::paper_default(15.0)),
            OverloadPenalty::new(0.15),
            0.9,
        )
    }

    #[test]
    fn y_function_is_piecewise_linear() {
        let loads = [1.0, 3.0];
        assert_eq!(y_function(&loads, 0.5), 0.0);
        assert_eq!(y_function(&loads, 2.0), 1.0);
        assert_eq!(y_function(&loads, 4.0), 4.0);
    }

    #[test]
    fn water_level_solves_y() {
        let loads = [0.0, 2.0, 5.0];
        let total = 4.0;
        let lambda = water_level(&loads, total);
        assert!((y_function(&loads, lambda) - total).abs() < 1e-9);
        // Hand calculation: λ = 3 gives (3) + (1) + 0 = 4.
        assert!((lambda - 3.0).abs() < 1e-9);
    }

    #[test]
    fn waterfill_tops_up_lowest_loads_first() {
        let shares = waterfill(&[0.0, 2.0, 5.0], 4.0);
        assert!((shares[0] - 3.0).abs() < 1e-9);
        assert!((shares[1] - 1.0).abs() < 1e-9);
        assert!((shares[2] - 0.0).abs() < 1e-12);
        assert!((shares.iter().sum::<f64>() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn waterfill_equalizes_equal_loads() {
        let shares = waterfill(&[1.0, 1.0, 1.0, 1.0], 8.0);
        for s in &shares {
            assert!((s - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_total_allocates_nothing() {
        assert_eq!(waterfill(&[1.0, 2.0], 0.0), vec![0.0, 0.0]);
        let a = marginal_waterfill(&nl_cost(), &[60.0, 60.0], &[1.0, 2.0], 0.0);
        assert_eq!(a.shares, vec![0.0, 0.0]);
    }

    #[test]
    fn marginal_waterfill_matches_load_level_form_for_identical_sections() {
        // With identical sections, equal marginals ⇔ equal loads, so the
        // generalized scheduler must reproduce Eq. 12 exactly.
        let cost = nl_cost();
        let caps = [60.0; 4];
        let loads = [5.0, 20.0, 11.0, 0.0];
        let total = 30.0;
        let a = marginal_waterfill(&cost, &caps, &loads, total);
        let expected = waterfill(&loads, total);
        for (got, want) in a.shares.iter().zip(&expected) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
        assert!((a.total() - total).abs() < 1e-9);
        // The reported marginal equals Z' at the water level.
        let level = water_level(&loads, total);
        assert!((a.marginal - cost.z_prime(level, 60.0)).abs() < 1e-6);
    }

    #[test]
    fn marginal_waterfill_equalizes_marginals_for_heterogeneous_caps() {
        let cost = nl_cost();
        let caps = [40.0, 80.0, 120.0];
        let loads = [0.0, 0.0, 0.0];
        let a = marginal_waterfill(&cost, &caps, &loads, 60.0);
        // Every section that received power sits at (nearly) the same Z'.
        let margins: Vec<f64> = (0..3)
            .filter(|&c| a.shares[c] > 1e-9)
            .map(|c| cost.z_prime(loads[c] + a.shares[c], caps[c]))
            .collect();
        for m in &margins {
            assert!(
                (m - a.marginal).abs() < 1e-6,
                "marginal {m} vs μ {}",
                a.marginal
            );
        }
        // Bigger sections absorb more at equal marginal cost.
        assert!(a.shares[2] > a.shares[1]);
        assert!(a.shares[1] > a.shares[0]);
    }

    #[test]
    fn greedy_fill_is_sequential_and_unbalanced() {
        let cost = lin_cost();
        let caps = [60.0; 3];
        let loads = [0.0; 3];
        let a = greedy_fill(&cost, &caps, &loads, 70.0);
        // Knee is 54: first section fills to 54, second takes the rest.
        assert!((a.shares[0] - 54.0).abs() < 1e-9);
        assert!((a.shares[1] - 16.0).abs() < 1e-9);
        assert_eq!(a.shares[2], 0.0);
        assert!((a.total() - 70.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_fill_spills_evenly_past_all_knees() {
        let cost = lin_cost();
        let caps = [10.0; 2];
        let loads = [9.0; 2]; // knees at 9.0: zero headroom everywhere
        let a = greedy_fill(&cost, &caps, &loads, 4.0);
        assert!((a.shares[0] - 2.0).abs() < 1e-12);
        assert!((a.shares[1] - 2.0).abs() < 1e-12);
        // The marginal reflects the overload region.
        assert!(a.marginal > cost.z_prime(9.0, 10.0));
    }

    #[test]
    fn marginal_is_monotone_in_total() {
        let cost = nl_cost();
        let caps = [60.0; 5];
        let loads = [3.0, 9.0, 1.0, 4.0, 7.0];
        let mut last = 0.0;
        for i in 1..20 {
            let a = marginal_waterfill(&cost, &caps, &loads, i as f64 * 5.0);
            assert!(a.marginal >= last, "marginal must not decrease");
            last = a.marginal;
        }
    }

    #[test]
    #[should_panic(expected = "strictly convex")]
    fn marginal_waterfill_rejects_linear_cost() {
        let _ = marginal_waterfill(&lin_cost(), &[60.0], &[0.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one section")]
    fn empty_loads_panic() {
        let _ = water_level(&[], 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_total_panics() {
        let _ = water_level(&[1.0], -1.0);
    }
}
