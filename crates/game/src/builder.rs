//! Scenario construction.

use oes_units::Kilowatts;
use oes_wpt::{ChargingSection, Olev};

use crate::engine::Game;
use crate::error::GameError;
use crate::payment::Scheduler;
use crate::pricing::{NonlinearPricing, OverloadPenalty, PricingPolicy, SectionCost};
use crate::satisfaction::{LogSatisfaction, Satisfaction};
use crate::schedule::{PowerSchedule, RESYNC_WRITES};
use crate::state::{ScheduleState, DEFAULT_RESYNC_EVERY};

/// Builds a [`Game`].
///
/// # Examples
///
/// The quickstart scenario — a charging lane under the paper's nonlinear
/// policy, run to the social optimum:
///
/// ```
/// use oes_game::{GameBuilder, NonlinearPricing, PricingPolicy, UpdateOrder};
/// use oes_units::Kilowatts;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut game = GameBuilder::new()
///     .sections(20, Kilowatts::new(60.0))     // 20 road sections, 60 kW each
///     .olevs(8, Kilowatts::new(50.0))         // 8 OLEVs, P_OLEV = 50 kW
///     .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)))
///     .eta(0.9)
///     .build()?;
/// let outcome = game.run(UpdateOrder::RoundRobin, 2_000)?;
/// assert!(outcome.converged());
/// assert!(game.welfare() > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct GameBuilder {
    caps: Vec<f64>,
    olevs: Vec<OlevSpecEntry>,
    policy: PricingPolicy,
    kappa: Option<f64>,
    eta: f64,
    tolerance: f64,
    scheduler_override: Option<Scheduler>,
    welfare_resync_every: usize,
    schedule_resync_writes: usize,
    warm_start: WarmStart,
}

/// How [`GameBuilder::build`] seeds the initial [`PowerSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmStart {
    /// The paper's cold start: an all-zero schedule, best responses climb
    /// the potential from the origin.
    #[default]
    Cold,
    /// Seed every row from the [mean-field limit](crate::meanfield): each
    /// OLEV starts at its type representative's equilibrium allocation, so
    /// the exact engine only burns down the O(1/N) mean-field bias instead
    /// of climbing from zero — same equilibrium (within the engine's
    /// tolerance), far fewer updates. Requires a scenario the mean-field
    /// contract covers, else [`GameBuilder::build`] returns
    /// [`GameError::MeanFieldUnsupported`].
    MeanField,
}

/// One OLEV as accumulated by the builder: capacity bound, satisfaction,
/// and an optional accessible-section window (`None` = the full corridor).
struct OlevSpecEntry {
    p_max: f64,
    satisfaction: Box<dyn Satisfaction>,
    window: Option<(usize, usize)>,
}

impl core::fmt::Debug for GameBuilder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("GameBuilder")
            .field("sections", &self.caps.len())
            .field("olevs", &self.olevs.len())
            .field("eta", &self.eta)
            .finish_non_exhaustive()
    }
}

impl GameBuilder {
    /// Starts a builder with the paper's defaults: nonlinear pricing at an
    /// LBMP of $15/MWh, `η = 0.9`, overload stiffness `κ = β̃`.
    ///
    /// The default κ is deliberately *moderate*: a stiffer overload penalty
    /// pins congestion harder to the Eq. 4 knee but ill-conditions the
    /// best-response dynamics (the knee's curvature ratio governs the
    /// Gauss–Seidel rate) — the `ablation` bench quantifies the trade-off.
    #[must_use]
    pub fn new() -> Self {
        Self {
            caps: Vec::new(),
            olevs: Vec::new(),
            policy: PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
            kappa: None,
            eta: 0.9,
            tolerance: 1e-7,
            scheduler_override: None,
            welfare_resync_every: DEFAULT_RESYNC_EVERY,
            schedule_resync_writes: RESYNC_WRITES,
            warm_start: WarmStart::Cold,
        }
    }

    /// Adds `count` identical sections of the given capacity.
    #[must_use]
    pub fn sections(mut self, count: usize, capacity: Kilowatts) -> Self {
        self.caps
            .extend(std::iter::repeat_n(capacity.value(), count));
        self
    }

    /// Adds one section of the given capacity.
    #[must_use]
    pub fn section(mut self, capacity: Kilowatts) -> Self {
        self.caps.push(capacity.value());
        self
    }

    /// Adds `count` identical OLEVs with capacity bound `p_max` and unit-
    /// weight log satisfaction.
    #[must_use]
    pub fn olevs(self, count: usize, p_max: Kilowatts) -> Self {
        self.olevs_weighted(count, p_max, 1.0)
    }

    /// Adds `count` identical OLEVs with the given satisfaction weight.
    #[must_use]
    pub fn olevs_weighted(mut self, count: usize, p_max: Kilowatts, weight: f64) -> Self {
        for _ in 0..count {
            self.olevs.push(OlevSpecEntry {
                p_max: p_max.value(),
                satisfaction: Box::new(LogSatisfaction::new(weight)),
                window: None,
            });
        }
        self
    }

    /// Adds `count` identical unit-weight OLEVs restricted to the
    /// half-open section window `window` — a corridor span, the physical
    /// reality that a vehicle traversing sections `[a, b)` can only draw
    /// power there. The serial and parallel in-process engines schedule such
    /// an OLEV over its window only (its row stays zero outside), which is
    /// what gives fleets on disjoint spans genuinely disjoint section
    /// footprints — the structural independence
    /// [`crate::parallel::ApplyMode::Partitioned`] commits exploit.
    ///
    /// Window bounds are validated at [`GameBuilder::build`] (sections may be
    /// added after OLEVs): an empty or out-of-range window is rejected.
    #[must_use]
    pub fn olevs_in(self, count: usize, p_max: Kilowatts, window: core::ops::Range<usize>) -> Self {
        self.olevs_weighted_in(count, p_max, 1.0, window)
    }

    /// [`GameBuilder::olevs_in`] with an explicit satisfaction weight.
    #[must_use]
    pub fn olevs_weighted_in(
        mut self,
        count: usize,
        p_max: Kilowatts,
        weight: f64,
        window: core::ops::Range<usize>,
    ) -> Self {
        for _ in 0..count {
            self.olevs.push(OlevSpecEntry {
                p_max: p_max.value(),
                satisfaction: Box::new(LogSatisfaction::new(weight)),
                window: Some((window.start, window.end)),
            });
        }
        self
    }

    /// Adds one OLEV with a custom satisfaction function.
    #[must_use]
    pub fn olev_with(mut self, p_max: Kilowatts, satisfaction: Box<dyn Satisfaction>) -> Self {
        self.olevs.push(OlevSpecEntry {
            p_max: p_max.value(),
            satisfaction,
            window: None,
        });
        self
    }

    /// Sets the pricing policy (default: nonlinear at $15/MWh).
    #[must_use]
    pub fn pricing(mut self, policy: PricingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the safety factor `η` of Eq. 4 (default 0.9).
    #[must_use]
    pub fn eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }

    /// Sets the overload stiffness κ (default `β̃`).
    #[must_use]
    pub fn overload(mut self, kappa: f64) -> Self {
        self.kappa = Some(kappa);
        self
    }

    /// Sets the convergence tolerance on `|Δp_n|` (default `1e-7` kW).
    #[must_use]
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets how many applied rows pass between exact recomputes of the
    /// incremental welfare sums (default
    /// [`DEFAULT_RESYNC_EVERY`]). An
    /// interval of 1 reproduces the naive recompute path bit-for-bit; larger
    /// intervals amortize the O(N·C) resync across more O(C) updates. The
    /// parallel engine snapshots the same cached state, so this is also its
    /// snapshot-refresh cadence.
    ///
    /// ```
    /// use oes_game::{GameBuilder, UpdateOrder};
    /// use oes_units::Kilowatts;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// // Interval 1 = resync after every update: the incremental welfare is
    /// // bit-identical to the naive recompute at every step.
    /// let mut exact = GameBuilder::new()
    ///     .sections(6, Kilowatts::new(60.0))
    ///     .olevs(3, Kilowatts::new(40.0))
    ///     .welfare_resync_interval(1)
    ///     .build()?;
    /// let mut cached = GameBuilder::new()
    ///     .sections(6, Kilowatts::new(60.0))
    ///     .olevs(3, Kilowatts::new(40.0))
    ///     .build()?;
    /// let we = exact.run(UpdateOrder::RoundRobin, 500)?.final_welfare();
    /// let wc = cached.run(UpdateOrder::RoundRobin, 500)?.final_welfare();
    /// assert!((we - wc).abs() < 1e-9);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn welfare_resync_interval(mut self, every: usize) -> Self {
        self.welfare_resync_every = every;
        self
    }

    /// Sets how many schedule row writes pass between exact recomputes of
    /// the cached section loads/totals (default
    /// [`RESYNC_WRITES`]). An interval of 1
    /// keeps the caches bit-identical to the naive column/row sums — the
    /// reference configuration the equivalence tests pin against.
    #[must_use]
    pub fn schedule_resync_writes(mut self, writes: usize) -> Self {
        self.schedule_resync_writes = writes;
        self
    }

    /// Chooses how the initial schedule is seeded (default
    /// [`WarmStart::Cold`]).
    ///
    /// ```
    /// use oes_game::{GameBuilder, UpdateOrder, WarmStart};
    /// use oes_units::Kilowatts;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let build = |ws| {
    ///     GameBuilder::new()
    ///         .sections(8, Kilowatts::new(60.0))
    ///         .olevs(128, Kilowatts::new(50.0))
    ///         .warm_start(ws)
    ///         .build()
    /// };
    /// let warm = build(WarmStart::MeanField)?.run(UpdateOrder::RoundRobin, 512 * 128)?;
    /// let cold = build(WarmStart::Cold)?.run(UpdateOrder::RoundRobin, 512 * 128)?;
    /// // Same equilibrium, fewer updates to reach it.
    /// assert!((warm.final_welfare() - cold.final_welfare()).abs() < 1e-9);
    /// assert!(warm.updates() < cold.updates());
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn warm_start(mut self, warm_start: WarmStart) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Forces a specific scheduler instead of the one the pricing policy
    /// admits — an ablation knob (e.g. nonlinear pricing *with greedy
    /// filling* shows the load balance of Fig. 5(c) needs the water-filling
    /// scheduler, not just the convex prices).
    ///
    /// Forcing water-filling onto the linear policy is rejected at build
    /// time since Lemma IV.1 needs strict convexity.
    #[must_use]
    pub fn force_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler_override = Some(scheduler);
        self
    }

    /// Populates sections and OLEVs from WPT-substrate objects: section
    /// capacities come from Eq. 1 at each OLEV's common velocity and the
    /// given traffic flow; OLEV bounds come from Eq. 2.
    ///
    /// # Panics
    ///
    /// Panics if `olevs` is empty (the common velocity is their mean).
    #[must_use]
    pub fn from_wpt(
        mut self,
        olevs: &[Olev],
        sections: &[ChargingSection],
        passes_per_hour: f64,
    ) -> Self {
        assert!(!olevs.is_empty(), "need at least one OLEV for a velocity");
        let mean_vel = olevs.iter().map(|o| o.velocity().value()).sum::<f64>() / olevs.len() as f64;
        let vel = oes_units::MetersPerSecond::new(mean_vel);
        for s in sections {
            self.caps
                .push(s.sustained_capacity(vel, passes_per_hour).value());
        }
        for o in olevs {
            self.olevs.push(OlevSpecEntry {
                p_max: o.receivable_power().value(),
                satisfaction: Box::new(LogSatisfaction::new(1.0)),
                window: None,
            });
        }
        self
    }

    /// Builds the game with an all-zero initial schedule.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::NoSections`] / [`GameError::NoOlevs`] for empty
    /// scenarios and [`GameError::InvalidParameter`] for non-positive
    /// capacities, non-finite bounds, or an out-of-range `η`/κ/tolerance.
    /// With [`WarmStart::MeanField`], scenarios outside the mean-field
    /// contract are rejected with [`GameError::MeanFieldUnsupported`].
    pub fn build(self) -> Result<Game, GameError> {
        if self.caps.is_empty() {
            return Err(GameError::NoSections);
        }
        if self.olevs.is_empty() {
            return Err(GameError::NoOlevs);
        }
        for &cap in &self.caps {
            if !(cap > 0.0 && cap.is_finite()) {
                return Err(GameError::InvalidParameter {
                    name: "section capacity",
                    value: cap,
                });
            }
        }
        for o in &self.olevs {
            if !(o.p_max >= 0.0 && o.p_max.is_finite()) {
                return Err(GameError::InvalidParameter {
                    name: "olev p_max",
                    value: o.p_max,
                });
            }
            if let Some((start, end)) = o.window {
                if start >= end || end > self.caps.len() {
                    return Err(GameError::InvalidParameter {
                        name: "olev section window",
                        value: end as f64,
                    });
                }
            }
        }
        if !(self.eta > 0.0 && self.eta <= 1.0) {
            return Err(GameError::InvalidParameter {
                name: "eta",
                value: self.eta,
            });
        }
        if !(self.tolerance > 0.0 && self.tolerance.is_finite()) {
            return Err(GameError::InvalidParameter {
                name: "tolerance",
                value: self.tolerance,
            });
        }
        if self.welfare_resync_every == 0 {
            return Err(GameError::InvalidParameter {
                name: "welfare resync interval",
                value: 0.0,
            });
        }
        if self.schedule_resync_writes == 0 {
            return Err(GameError::InvalidParameter {
                name: "schedule resync writes",
                value: 0.0,
            });
        }
        let beta = match &self.policy {
            PricingPolicy::Nonlinear(p) => p.beta,
            PricingPolicy::Linear(p) => p.beta,
        };
        let kappa = self.kappa.unwrap_or(beta);
        if !(kappa >= 0.0 && kappa.is_finite()) {
            return Err(GameError::InvalidParameter {
                name: "kappa",
                value: kappa,
            });
        }
        let cost = SectionCost::new(self.policy, OverloadPenalty::new(kappa), self.eta);
        let scheduler = match self.scheduler_override {
            Some(Scheduler::WaterFilling) if !cost.supports_waterfilling() => {
                return Err(GameError::InvalidParameter {
                    name: "scheduler (water-filling needs strictly convex Z)",
                    value: 0.0,
                });
            }
            Some(s) => s,
            None => Scheduler::for_cost(&cost),
        };
        let full_window = (0, self.caps.len());
        let mut p_max = Vec::with_capacity(self.olevs.len());
        let mut satisfactions: Vec<Box<dyn Satisfaction>> = Vec::with_capacity(self.olevs.len());
        let mut windows = Vec::with_capacity(self.olevs.len());
        for o in self.olevs {
            p_max.push(o.p_max);
            satisfactions.push(o.satisfaction);
            windows.push(o.window.unwrap_or(full_window));
        }
        let schedule = PowerSchedule::zeros(p_max.len(), self.caps.len());
        let mut state = ScheduleState::new(schedule, &satisfactions, &cost, &self.caps);
        state.set_resync_interval(self.welfare_resync_every);
        state.set_schedule_resync_writes(self.schedule_resync_writes);
        let scratch_loads = Vec::with_capacity(self.caps.len());
        let scratch_row = vec![0.0; self.caps.len()];
        let mut game = Game {
            satisfactions,
            p_max,
            caps: self.caps,
            cost,
            scheduler,
            state,
            tolerance: self.tolerance,
            scratch_loads,
            scratch_row,
            windows,
            welfare_resync_every: self.welfare_resync_every,
            schedule_resync_writes: self.schedule_resync_writes,
        };
        if self.warm_start == WarmStart::MeanField {
            game.warm_start_mean_field()?;
        }
        Ok(game)
    }
}

impl Default for GameBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::LinearPricing;
    use oes_units::{MetersPerSecond, OlevId, SectionId, StateOfCharge};
    use oes_wpt::OlevSpec;

    #[test]
    fn builds_a_valid_game() {
        let g = GameBuilder::new()
            .sections(5, Kilowatts::new(60.0))
            .olevs(3, Kilowatts::new(40.0))
            .build()
            .unwrap();
        assert_eq!(g.olev_count(), 3);
        assert_eq!(g.section_count(), 5);
        assert_eq!(g.schedule().total(), 0.0);
        assert_eq!(g.scheduler(), Scheduler::WaterFilling);
    }

    #[test]
    fn linear_policy_selects_greedy_scheduler() {
        let g = GameBuilder::new()
            .sections(2, Kilowatts::new(60.0))
            .olevs(1, Kilowatts::new(40.0))
            .pricing(PricingPolicy::Linear(LinearPricing::paper_default(20.0)))
            .build()
            .unwrap();
        assert_eq!(g.scheduler(), Scheduler::Greedy);
    }

    #[test]
    fn empty_scenarios_rejected() {
        assert_eq!(
            GameBuilder::new()
                .olevs(1, Kilowatts::new(1.0))
                .build()
                .unwrap_err(),
            GameError::NoSections
        );
        assert_eq!(
            GameBuilder::new()
                .sections(1, Kilowatts::new(1.0))
                .build()
                .unwrap_err(),
            GameError::NoOlevs
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        let err = GameBuilder::new()
            .section(Kilowatts::new(-5.0))
            .olevs(1, Kilowatts::new(1.0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            GameError::InvalidParameter {
                name: "section capacity",
                ..
            }
        ));

        // Regression for the zero-capacity congestion guard: a 0 kW section
        // must be rejected here, before it can poison `P_c / cap` gauges.
        let err = GameBuilder::new()
            .section(Kilowatts::new(0.0))
            .olevs(1, Kilowatts::new(1.0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            GameError::InvalidParameter {
                name: "section capacity",
                ..
            }
        ));

        let err = GameBuilder::new()
            .sections(1, Kilowatts::new(10.0))
            .olevs(1, Kilowatts::new(1.0))
            .eta(0.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            GameError::InvalidParameter { name: "eta", .. }
        ));
    }

    #[test]
    fn from_wpt_wires_eq1_and_eq2() {
        let spec = OlevSpec::chevy_spark_default();
        let mut olevs: Vec<Olev> = (0..3)
            .map(|i| {
                Olev::new(
                    OlevId(i),
                    spec,
                    StateOfCharge::saturating(0.4),
                    StateOfCharge::saturating(0.8),
                )
            })
            .collect();
        for o in &mut olevs {
            o.set_velocity(MetersPerSecond::new(26.8224));
        }
        let sections: Vec<ChargingSection> = (0..4)
            .map(|i| ChargingSection::paper_default(SectionId(i)))
            .collect();
        let g = GameBuilder::new()
            .from_wpt(&olevs, &sections, 300.0)
            .build()
            .unwrap();
        assert_eq!(g.olev_count(), 3);
        assert_eq!(g.section_count(), 4);
        // Eq. 2 with (0.8 − 0.4 + 0.2): 0.6 × 95.76 × 0.85 / 0.9.
        let expected = 0.6 * 95.76 * 0.85 / 0.9;
        assert!((g.p_max()[0] - expected).abs() < 1e-9);
        // Eq. 1-derived sustained capacity is positive and uniform.
        assert!(g.caps()[0] > 0.0);
        assert_eq!(g.caps()[0], g.caps()[3]);
    }

    #[test]
    fn force_scheduler_ablation_knob() {
        // Nonlinear pricing with greedy filling is allowed (ablation)...
        let g = GameBuilder::new()
            .sections(2, Kilowatts::new(60.0))
            .olevs(1, Kilowatts::new(40.0))
            .force_scheduler(Scheduler::Greedy)
            .build()
            .unwrap();
        assert_eq!(g.scheduler(), Scheduler::Greedy);
        // ...but water-filling on the linear policy violates Lemma IV.1.
        let err = GameBuilder::new()
            .sections(2, Kilowatts::new(60.0))
            .olevs(1, Kilowatts::new(40.0))
            .pricing(PricingPolicy::Linear(LinearPricing::paper_default(15.0)))
            .force_scheduler(Scheduler::WaterFilling)
            .build()
            .unwrap_err();
        assert!(matches!(err, GameError::InvalidParameter { .. }));
    }

    #[test]
    fn zero_resync_intervals_rejected_at_build() {
        let err = GameBuilder::new()
            .sections(2, Kilowatts::new(60.0))
            .olevs(1, Kilowatts::new(40.0))
            .welfare_resync_interval(0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            GameError::InvalidParameter {
                name: "welfare resync interval",
                ..
            }
        ));
        let err = GameBuilder::new()
            .sections(2, Kilowatts::new(60.0))
            .olevs(1, Kilowatts::new(40.0))
            .schedule_resync_writes(0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            GameError::InvalidParameter {
                name: "schedule resync writes",
                ..
            }
        ));
    }

    #[test]
    fn builder_resync_intervals_survive_reset() {
        use crate::engine::UpdateOrder;
        // Interval-1 via the builder must reproduce the naive-path welfare
        // bit-for-bit even after `reset()` rebuilds the incremental state —
        // the regression the durable `Game` fields exist for.
        let build = |exact: bool| {
            let b = GameBuilder::new()
                .sections(4, Kilowatts::new(60.0))
                .olevs(3, Kilowatts::new(40.0));
            let b = if exact {
                b.welfare_resync_interval(1).schedule_resync_writes(1)
            } else {
                b
            };
            b.build().unwrap()
        };
        let mut exact = build(true);
        let mut cached = build(false);
        exact.run(UpdateOrder::RoundRobin, 100).unwrap();
        cached.run(UpdateOrder::RoundRobin, 100).unwrap();
        exact.reset();
        cached.reset();
        let oe = exact.run(UpdateOrder::RoundRobin, 300).unwrap();
        let oc = cached.run(UpdateOrder::RoundRobin, 300).unwrap();
        assert_eq!(oe.converged(), oc.converged());
        assert!((oe.final_welfare() - oc.final_welfare()).abs() < 1e-9);
        // And the exact game's cached loads equal a from-scratch resync bit
        // for bit (schedule interval 1).
        let mut resynced = exact.schedule().clone();
        resynced.resync();
        for (a, b) in exact.schedule().loads().iter().zip(resynced.loads()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn heterogeneous_olevs_supported() {
        let g = GameBuilder::new()
            .sections(2, Kilowatts::new(60.0))
            .olev_with(Kilowatts::new(20.0), Box::new(LogSatisfaction::new(5.0)))
            .olevs_weighted(2, Kilowatts::new(40.0), 0.5)
            .build()
            .unwrap();
        assert_eq!(g.olev_count(), 3);
        assert_eq!(g.p_max(), &[20.0, 40.0, 40.0]);
    }
}
