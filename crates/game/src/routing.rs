//! OLEV path planning under charging-lane pricing — the second item on the
//! paper's future-work list ("the effect charging section placement will
//! have on OLEV path planning").
//!
//! A fleet chooses between a charging route (longer or slower, but equipped
//! with charging sections priced by the game) and a plain route. Each OLEV
//! weighs the value of the energy it would receive against the detour time
//! and the game's payment. Because the payment rises with congestion (the
//! nonlinear policy), the route choice has a self-limiting equilibrium: a
//! stable fleet split where the marginal OLEV is indifferent. The fixed
//! point is computed by running the pricing game for each candidate split.

use oes_units::Kilowatts;

use crate::builder::GameBuilder;
use crate::engine::UpdateOrder;
use crate::error::GameError;
use crate::pricing::PricingPolicy;

/// A route option for the fleet.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RouteOption {
    /// Travel time in hours.
    pub travel_hours: f64,
    /// Number of charging sections installed along the route.
    pub charging_sections: usize,
}

/// Economic parameters of the route choice.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RoutingEconomics {
    /// Value of travel time, $ per hour.
    pub time_value: f64,
    /// Private value of received energy, $ per kWh (what charging elsewhere
    /// would cost the OLEV).
    pub energy_value: f64,
}

impl Default for RoutingEconomics {
    fn default() -> Self {
        Self {
            time_value: 20.0,
            energy_value: 0.30,
        }
    }
}

/// The equilibrium of the route-choice game.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingEquilibrium {
    /// OLEVs taking the charging route.
    pub on_charging_route: usize,
    /// OLEVs taking the plain route.
    pub on_plain_route: usize,
    /// Per-OLEV net benefit of the charging route at the split ($).
    pub marginal_benefit: f64,
    /// Congestion degree of the charging lane at the split.
    pub lane_congestion: f64,
}

/// Configuration of the route-choice study.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteChoice {
    /// The route with charging sections.
    pub charging_route: RouteOption,
    /// The plain alternative.
    pub plain_route: RouteOption,
    /// Fleet size.
    pub fleet: usize,
    /// Per-section capacity (kW) on the charging lane.
    pub section_capacity: Kilowatts,
    /// Per-OLEV receivable bound (kW), Eq. 2.
    pub olev_p_max: Kilowatts,
    /// The lane's pricing policy.
    pub policy: PricingPolicy,
    /// Economic weights.
    pub economics: RoutingEconomics,
}

impl RouteChoice {
    /// Net benefit per OLEV of taking the charging route when `k` OLEVs do:
    /// energy value minus game payment minus detour cost. `k = 0` prices the
    /// lane as empty.
    ///
    /// # Errors
    ///
    /// Propagates [`GameError`] from the underlying game run.
    pub fn benefit_at_split(&self, k: usize) -> Result<(f64, f64), GameError> {
        let detour = (self.charging_route.travel_hours - self.plain_route.travel_hours).max(0.0);
        let detour_cost = detour * self.economics.time_value;
        if k == 0 {
            // An empty lane: price the first entrant against zero load.
            let mut g = GameBuilder::new()
                .sections(self.charging_route.charging_sections, self.section_capacity)
                .olevs(1, self.olev_p_max)
                .pricing(self.policy)
                .build()?;
            g.run(UpdateOrder::RoundRobin, 1000)?;
            let energy = g.schedule().total();
            let value = energy * self.economics.energy_value - g.total_payment() - detour_cost;
            return Ok((value, g.system_congestion()));
        }
        let mut g = GameBuilder::new()
            .sections(self.charging_route.charging_sections, self.section_capacity)
            .olevs(k, self.olev_p_max)
            .pricing(self.policy)
            .build()?;
        g.run(UpdateOrder::RoundRobin, 20_000)?;
        let energy_per_olev = g.schedule().total() / k as f64;
        let payment_per_olev = g.total_payment() / k as f64;
        let benefit =
            energy_per_olev * self.economics.energy_value - payment_per_olev - detour_cost;
        Ok((benefit, g.system_congestion()))
    }

    /// Finds the stable fleet split: the largest `k` whose per-OLEV benefit
    /// is still non-negative (the marginal OLEV is willing). Benefit is
    /// non-increasing in `k` (more sharing, higher congestion price), so a
    /// binary search over `k` suffices.
    ///
    /// # Errors
    ///
    /// Propagates [`GameError`] from the underlying game runs.
    pub fn equilibrium(&self) -> Result<RoutingEquilibrium, GameError> {
        let (b0, c0) = self.benefit_at_split(1)?;
        if b0 < 0.0 {
            return Ok(RoutingEquilibrium {
                on_charging_route: 0,
                on_plain_route: self.fleet,
                marginal_benefit: b0,
                lane_congestion: 0.0,
            });
        }
        let (mut lo, mut hi) = (1usize, self.fleet);
        let (b_all, c_all) = self.benefit_at_split(self.fleet)?;
        if b_all >= 0.0 {
            return Ok(RoutingEquilibrium {
                on_charging_route: self.fleet,
                on_plain_route: 0,
                marginal_benefit: b_all,
                lane_congestion: c_all,
            });
        }
        // Invariant: benefit(lo) ≥ 0 > benefit(hi).
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let (b, _) = self.benefit_at_split(mid)?;
            if b >= 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (b, c) = self.benefit_at_split(lo)?;
        Ok(RoutingEquilibrium {
            on_charging_route: lo,
            on_plain_route: self.fleet - lo,
            marginal_benefit: b,
            lane_congestion: if lo == 1 { c0.max(c) } else { c },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::NonlinearPricing;

    fn study(detour_hours: f64, sections: usize) -> RouteChoice {
        RouteChoice {
            charging_route: RouteOption {
                travel_hours: 0.5 + detour_hours,
                charging_sections: sections,
            },
            plain_route: RouteOption {
                travel_hours: 0.5,
                charging_sections: 0,
            },
            fleet: 12,
            section_capacity: Kilowatts::new(35.0),
            olev_p_max: Kilowatts::new(60.0),
            policy: PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
            economics: RoutingEconomics::default(),
        }
    }

    #[test]
    fn benefit_decreases_with_crowding() {
        let s = study(0.05, 6);
        let (b2, _) = s.benefit_at_split(2).unwrap();
        let (b10, _) = s.benefit_at_split(10).unwrap();
        assert!(b2 > b10, "crowding must erode the benefit: {b2} vs {b10}");
    }

    #[test]
    fn huge_detour_empties_the_lane() {
        let s = study(10.0, 6);
        let eq = s.equilibrium().unwrap();
        assert_eq!(eq.on_charging_route, 0);
        assert_eq!(eq.on_plain_route, 12);
        assert!(eq.marginal_benefit < 0.0);
    }

    #[test]
    fn free_detour_fills_the_lane_or_splits() {
        let s = study(0.0, 6);
        let eq = s.equilibrium().unwrap();
        assert!(eq.on_charging_route >= 1);
        assert_eq!(eq.on_charging_route + eq.on_plain_route, 12);
        assert!(eq.marginal_benefit >= 0.0);
    }

    #[test]
    fn more_sections_attract_more_olevs() {
        // The placement → path-planning interaction the paper anticipates.
        let small = study(0.12, 3).equilibrium().unwrap();
        let large = study(0.12, 12).equilibrium().unwrap();
        assert!(
            large.on_charging_route >= small.on_charging_route,
            "{} vs {}",
            large.on_charging_route,
            small.on_charging_route
        );
    }
}
