//! Errors of the game crate.

use core::fmt;

/// Errors from building or running a pricing game.
#[derive(Debug, Clone, PartialEq)]
pub enum GameError {
    /// The scenario has no charging sections.
    NoSections,
    /// The scenario has no OLEVs.
    NoOlevs,
    /// A capacity, weight, or price parameter was non-positive or non-finite.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An OLEV index was out of range.
    UnknownOlev(usize),
    /// The distributed engine lost a worker thread.
    WorkerFailed(String),
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSections => write!(f, "scenario has no charging sections"),
            Self::NoOlevs => write!(f, "scenario has no OLEVs"),
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name}: {value}")
            }
            Self::UnknownOlev(n) => write!(f, "unknown OLEV index {n}"),
            Self::WorkerFailed(msg) => write!(f, "distributed worker failed: {msg}"),
        }
    }
}

impl std::error::Error for GameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(GameError::NoSections.to_string(), "scenario has no charging sections");
        let e = GameError::InvalidParameter { name: "eta", value: -1.0 };
        assert!(e.to_string().contains("eta"));
        assert!(GameError::UnknownOlev(3).to_string().contains('3'));
    }
}
