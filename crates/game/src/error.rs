//! Errors of the game crate.

use core::fmt;

/// Errors from building or running a pricing game.
///
/// Marked `#[non_exhaustive]`: the hardened decentralized runtime keeps
/// growing failure modes, and adding one must not be a semver break.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GameError {
    /// The scenario has no charging sections.
    NoSections,
    /// The scenario has no OLEVs.
    NoOlevs,
    /// A capacity, weight, or price parameter was non-positive or non-finite.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An OLEV index was out of range.
    UnknownOlev(usize),
    /// The distributed engine lost a worker thread. If the worker panicked,
    /// the captured panic payload is included in the message.
    WorkerFailed(String),
    /// An offer's deadline expired with no usable reply (and, in a run
    /// without fault tolerance, no retry budget to spend).
    Timeout {
        /// The OLEV that failed to answer.
        olev: usize,
        /// How long the coordinator waited, in milliseconds.
        waited_ms: u64,
    },
    /// A worker's reply failed validation (non-finite or negative total).
    InvalidReply {
        /// The offending OLEV.
        olev: usize,
        /// What was wrong with the reply.
        reason: String,
    },
    /// A reply violated the offer/reply protocol — e.g. it answered an offer
    /// that was never outstanding. Applying it would corrupt another OLEV's
    /// schedule row, so the run aborts instead.
    ProtocolViolation {
        /// The OLEV the coordinator was waiting on.
        expected: usize,
        /// The OLEV the reply claimed to be from.
        got: usize,
    },
    /// Every OLEV was evicted; the value is the last one removed. A game
    /// with no live players has no welfare to optimize.
    OlevEvicted(usize),
    /// Bytes on the wire failed to decode into a protocol frame — a bad
    /// checksum, a truncated stream, an oversized length prefix, or a
    /// payload the token codec rejected. The transport layer resynchronizes
    /// and the offending session takes a strike; this variant surfaces when
    /// the damage has to be reported upward.
    MalformedFrame {
        /// What the framing or codec layer rejected.
        detail: String,
    },
    /// The scenario falls outside the mean-field contract (see
    /// ARCHITECTURE.md "Mean-field fast path"): a non-strictly-convex cost,
    /// a forced non-water-filling scheduler, or overlapping unequal section
    /// windows. The exact engines still handle it.
    MeanFieldUnsupported {
        /// Which part of the contract the scenario violates.
        reason: &'static str,
    },
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSections => write!(f, "scenario has no charging sections"),
            Self::NoOlevs => write!(f, "scenario has no OLEVs"),
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name}: {value}")
            }
            Self::UnknownOlev(n) => write!(f, "unknown OLEV index {n}"),
            Self::WorkerFailed(msg) => write!(f, "distributed worker failed: {msg}"),
            Self::Timeout { olev, waited_ms } => {
                write!(f, "OLEV {olev} timed out after {waited_ms} ms")
            }
            Self::InvalidReply { olev, reason } => {
                write!(f, "invalid reply from OLEV {olev}: {reason}")
            }
            Self::ProtocolViolation { expected, got } => {
                write!(
                    f,
                    "protocol violation: expected reply from OLEV {expected}, got OLEV {got}"
                )
            }
            Self::OlevEvicted(n) => {
                write!(
                    f,
                    "all OLEVs evicted (last was OLEV {n}); no live players remain"
                )
            }
            Self::MalformedFrame { detail } => {
                write!(f, "malformed protocol frame: {detail}")
            }
            Self::MeanFieldUnsupported { reason } => {
                write!(f, "mean-field fast path unsupported: {reason}")
            }
        }
    }
}

impl std::error::Error for GameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GameError::NoSections.to_string(),
            "scenario has no charging sections"
        );
        let e = GameError::InvalidParameter {
            name: "eta",
            value: -1.0,
        };
        assert!(e.to_string().contains("eta"));
        assert!(GameError::UnknownOlev(3).to_string().contains('3'));
    }

    #[test]
    fn display_covers_resilience_variants() {
        let t = GameError::Timeout {
            olev: 2,
            waited_ms: 250,
        };
        assert!(t.to_string().contains("OLEV 2"));
        assert!(t.to_string().contains("250 ms"));

        let i = GameError::InvalidReply {
            olev: 1,
            reason: "total is NaN".into(),
        };
        assert!(i.to_string().contains("OLEV 1"));
        assert!(i.to_string().contains("NaN"));

        let p = GameError::ProtocolViolation {
            expected: 0,
            got: 3,
        };
        assert!(p.to_string().contains("expected reply from OLEV 0"));
        assert!(p.to_string().contains("got OLEV 3"));

        let e = GameError::OlevEvicted(4);
        assert!(e.to_string().contains("OLEV 4"));

        let w = GameError::WorkerFailed("olev 1 panicked: boom".into());
        assert!(w.to_string().contains("boom"));

        let m = GameError::MalformedFrame {
            detail: "checksum mismatch".into(),
        };
        assert!(m.to_string().contains("malformed"));
        assert!(m.to_string().contains("checksum mismatch"));
    }
}
