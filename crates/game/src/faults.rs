//! Deterministic fault injection for the decentralized runtime.
//!
//! The paper's protocol runs over wireless V2I links (IEEE 802.11p / LTE) to
//! vehicles moving at 60–80 mph: messages get dropped, delayed, reordered,
//! and duplicated, radios stall, on-board computers crash, and vehicles leave
//! the corridor mid-negotiation. Theorem IV.1 proves the best-response
//! dynamics converge under exactly this kind of bounded asynchrony — this
//! module provides the machinery to *test* that claim instead of assuming it.
//!
//! A [`FaultPlan`] is a seeded, purely declarative description of every fault
//! the runtime will inject. All randomness derives from ChaCha streams keyed
//! by `(seed, domain, link, event)`, so a verdict depends only on *which*
//! protocol event it applies to, never on thread timing: two runs with the
//! same seed inject byte-identical faults, which is what makes the chaos
//! suite's bit-determinism assertion possible.
//!
//! [`LossyLink`] wraps a crossbeam [`Sender`] and applies the plan's uplink
//! verdicts; [`DegradationReport`] is the accounting the hardened coordinator
//! attaches to every [`crate::Outcome`].

use crossbeam::channel::{SendError, Sender};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SplitMix64 finalizer — the standard statistically-strong 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fault-domain tags keeping the per-event ChaCha streams disjoint.
const DOMAIN_UPLINK: u64 = 0x01;
const DOMAIN_STALL: u64 = 0x02;
const DOMAIN_CORRUPT: u64 = 0x03;

/// What a lossy link decided to do with one transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LinkVerdict {
    /// The frame was lost in flight.
    pub dropped: bool,
    /// The frame was delivered twice (retransmission artifact).
    pub duplicated: bool,
    /// Extra propagation latency, in milliseconds. A delay larger than the
    /// receiver's per-offer deadline turns the frame into a *late* delivery:
    /// it still arrives, but only after the sender has given up on it.
    pub delay_ms: u64,
}

impl LinkVerdict {
    /// The verdict of a perfectly reliable link.
    pub const CLEAN: Self = Self {
        dropped: false,
        duplicated: false,
        delay_ms: 0,
    };

    /// How many copies of the frame actually enter the channel.
    #[must_use]
    pub fn copies(self) -> u32 {
        if self.dropped {
            0
        } else if self.duplicated {
            2
        } else {
            1
        }
    }
}

/// A seeded, declarative description of every fault injected into one run of
/// the decentralized runtime.
///
/// All probabilities are per protocol event; all draws are ChaCha streams
/// keyed by the event's coordinates, so the plan is deterministic under its
/// seed regardless of thread scheduling. The default plan (any seed, all
/// knobs zero) injects nothing.
///
/// # Examples
///
/// ```
/// use oes_game::FaultPlan;
///
/// let plan = FaultPlan::new(42)
///     .drop_probability(0.2)
///     .duplicate_probability(0.1)
///     .max_delay_ms(3)
///     .crash(2, 5)      // OLEV 2's on-board computer dies after 5 replies
///     .depart(1, 40);   // OLEV 1 leaves the corridor at update 40
/// assert_eq!(plan.seed(), 42);
/// // Verdicts are a pure function of the event coordinates.
/// assert_eq!(plan.uplink(0, 7, 0), plan.uplink(0, 7, 0));
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    seed: u64,
    drop_p: f64,
    duplicate_p: f64,
    max_delay_ms: u64,
    stall_p: f64,
    corrupt_p: f64,
    crash_after: Vec<(usize, usize)>,
    depart_at: Vec<(usize, usize)>,
}

impl FaultPlan {
    /// A lossless plan: nothing is injected until knobs are turned.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_p: 0.0,
            duplicate_p: 0.0,
            max_delay_ms: 0,
            stall_p: 0.0,
            corrupt_p: 0.0,
            crash_after: Vec::new(),
            depart_at: Vec::new(),
        }
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn checked_probability(p: f64, name: &str) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "{name} must be a probability, got {p}"
        );
        p
    }

    /// Per-message probability that a frame is lost in flight.
    #[must_use]
    pub fn drop_probability(mut self, p: f64) -> Self {
        self.drop_p = Self::checked_probability(p, "drop probability");
        self
    }

    /// Per-message probability that a delivered frame arrives twice.
    #[must_use]
    pub fn duplicate_probability(mut self, p: f64) -> Self {
        self.duplicate_p = Self::checked_probability(p, "duplicate probability");
        self
    }

    /// Maximum extra per-frame latency; each delivery draws uniformly from
    /// `0..=max` milliseconds. Delays beyond the coordinator's per-offer
    /// deadline surface as reordered, late frames.
    #[must_use]
    pub fn max_delay_ms(mut self, max: u64) -> Self {
        self.max_delay_ms = max;
        self
    }

    /// Per-offer probability that a worker silently swallows the offer (a
    /// radio or process stall): the coordinator sees only a missing reply.
    #[must_use]
    pub fn stall_probability(mut self, p: f64) -> Self {
        self.stall_p = Self::checked_probability(p, "stall probability");
        self
    }

    /// Per-reply probability that a worker garbles its best-response total
    /// (NaN, negative, or absurdly large) — exercising the grid's "no trust
    /// in the worker" validation.
    #[must_use]
    pub fn corrupt_probability(mut self, p: f64) -> Self {
        self.corrupt_p = Self::checked_probability(p, "corrupt probability");
        self
    }

    /// Crashes `olev`'s worker (a panic, payload captured) when it processes
    /// its next offer after having sent `after_replies` replies.
    #[must_use]
    pub fn crash(mut self, olev: usize, after_replies: usize) -> Self {
        self.crash_after.push((olev, after_replies));
        self
    }

    /// Departs `olev` from the game at update `at_update` (the vehicle
    /// leaves the corridor; the grid evicts it gracefully).
    #[must_use]
    pub fn depart(mut self, olev: usize, at_update: usize) -> Self {
        self.depart_at.push((olev, at_update));
        self
    }

    /// A ChaCha stream keyed by `(seed, domain, link, event)` — the sole
    /// source of randomness for every verdict.
    fn event_rng(&self, domain: u64, link: u64, event: u64) -> ChaCha8Rng {
        let mut key = splitmix64(self.seed ^ splitmix64(domain));
        key = splitmix64(key ^ link);
        key = splitmix64(key ^ event);
        ChaCha8Rng::seed_from_u64(key)
    }

    /// The uplink verdict for transmission `attempt` of offer `seq` to
    /// `olev`. Pure in its arguments.
    #[must_use]
    pub fn uplink(&self, olev: usize, seq: u64, attempt: u32) -> LinkVerdict {
        let event = splitmix64(seq ^ (u64::from(attempt) << 48));
        let mut rng = self.event_rng(DOMAIN_UPLINK, olev as u64, event);
        let dropped = rng.gen_bool(self.drop_p);
        let duplicated = !dropped && rng.gen_bool(self.duplicate_p);
        let delay_ms = if self.max_delay_ms == 0 {
            0
        } else {
            rng.gen_range(0..=self.max_delay_ms)
        };
        LinkVerdict {
            dropped,
            duplicated,
            delay_ms,
        }
    }

    /// Whether `olev`'s worker stalls on its `event`-th processed offer.
    #[must_use]
    pub fn worker_stalls(&self, olev: usize, event: u64) -> bool {
        self.stall_p > 0.0
            && self
                .event_rng(DOMAIN_STALL, olev as u64, event)
                .gen_bool(self.stall_p)
    }

    /// The garbled total `olev`'s worker reports on its `event`-th processed
    /// offer, if that reply is corrupted.
    #[must_use]
    pub fn corrupted_total(&self, olev: usize, event: u64) -> Option<f64> {
        if self.corrupt_p == 0.0 {
            return None;
        }
        let mut rng = self.event_rng(DOMAIN_CORRUPT, olev as u64, event);
        if !rng.gen_bool(self.corrupt_p) {
            return None;
        }
        Some(match rng.gen_range(0..4u32) {
            0 => f64::NAN,
            1 => f64::NEG_INFINITY,
            2 => -13.7,
            _ => 1.0e9,
        })
    }

    /// After how many replies `olev`'s worker crashes, if scheduled.
    #[must_use]
    pub fn crash_point(&self, olev: usize) -> Option<usize> {
        self.crash_after
            .iter()
            .find(|(o, _)| *o == olev)
            .map(|(_, k)| *k)
    }

    /// The OLEVs scheduled to depart at update `update`.
    #[must_use]
    pub fn departures_at(&self, update: usize) -> Vec<usize> {
        self.depart_at
            .iter()
            .filter(|(_, t)| *t == update)
            .map(|(o, _)| *o)
            .collect()
    }

    /// Whether the plan can inject anything at all.
    #[must_use]
    pub fn is_lossless(&self) -> bool {
        self.drop_p == 0.0
            && self.duplicate_p == 0.0
            && self.max_delay_ms == 0
            && self.stall_p == 0.0
            && self.corrupt_p == 0.0
            && self.crash_after.is_empty()
            && self.depart_at.is_empty()
    }
}

/// A lossy wrapper around a crossbeam [`Sender`]: each transmission attempt
/// consults the plan's uplink verdict and forwards zero, one, or two copies.
///
/// Delay is *virtualized*: a delayed frame is still forwarded immediately
/// (workers process it whenever they get to it), and the verdict tells the
/// coordinator whether the delay exceeded its deadline, i.e. whether it
/// should treat the frame as late and move on. This keeps injected latency
/// out of wall-clock time, which is what makes chaos runs fast *and*
/// deterministic.
#[derive(Debug)]
pub struct LossyLink<'p, M> {
    tx: Sender<M>,
    olev: usize,
    plan: Option<&'p FaultPlan>,
}

impl<'p, M: Clone> LossyLink<'p, M> {
    /// Wraps a sender; `plan = None` means a perfectly reliable link.
    #[must_use]
    pub fn new(tx: Sender<M>, olev: usize, plan: Option<&'p FaultPlan>) -> Self {
        Self { tx, olev, plan }
    }

    /// Attempts one transmission of `frame` for `(seq, attempt)` and returns
    /// the verdict it applied.
    ///
    /// # Errors
    ///
    /// Returns the channel's [`SendError`] if the receiver is gone (the
    /// worker died) and the verdict called for a delivery.
    pub fn send(&self, seq: u64, attempt: u32, frame: M) -> Result<LinkVerdict, SendError<M>> {
        let verdict = match self.plan {
            Some(plan) => plan.uplink(self.olev, seq, attempt),
            None => LinkVerdict::CLEAN,
        };
        for _ in 1..verdict.copies() {
            self.tx.send(frame.clone())?;
        }
        if verdict.copies() > 0 {
            self.tx.send(frame)?;
        }
        Ok(verdict)
    }
}

/// Why the coordinator evicted an OLEV from a running game.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EvictionReason {
    /// The per-offer deadline expired through the whole retry budget.
    Unresponsive,
    /// The worker thread died; the captured panic payload rides along.
    Crashed(String),
    /// The vehicle left the corridor (a scheduled departure / `Goodbye`).
    Departed,
    /// The worker kept sending invalid replies past the strike limit.
    Misbehaving,
}

impl core::fmt::Display for EvictionReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Unresponsive => write!(f, "unresponsive past the retry budget"),
            Self::Crashed(msg) => write!(f, "worker crashed: {msg}"),
            Self::Departed => write!(f, "departed the corridor"),
            Self::Misbehaving => write!(f, "kept sending invalid replies"),
        }
    }
}

/// One graceful eviction: the OLEV's schedule row was zeroed and the
/// convergence quorum shrunk.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Eviction {
    /// The evicted OLEV.
    pub olev: usize,
    /// The update count at which the eviction happened.
    pub at_update: usize,
    /// Why it was evicted.
    pub reason: EvictionReason,
}

/// The hardened coordinator's accounting of everything the network did to
/// it, attached to every [`crate::Outcome`].
///
/// A fault-free run over reliable links reports [`Self::is_clean`].
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct DegradationReport {
    /// Offer transmissions attempted (including retries).
    pub offers_sent: usize,
    /// Offers the lossy uplink dropped.
    pub drops: usize,
    /// Replies discarded because their `(olev, seq)` was already applied.
    pub duplicates: usize,
    /// Replies discarded as late or abandoned (no matching outstanding
    /// offer).
    pub stale: usize,
    /// Offer re-sends after a drop, timeout, or invalid reply.
    pub retries: usize,
    /// Per-offer deadlines that expired (real or virtual).
    pub timeouts: usize,
    /// Replies rejected as non-finite or negative.
    pub invalid_replies: usize,
    /// Replies clamped down to the OLEV's `P_OLEV` bound.
    pub clamped_replies: usize,
    /// `Hello` announcements received.
    pub hellos: usize,
    /// `Goodbye` messages received.
    pub goodbyes: usize,
    /// Parallel-sweep moves discarded at apply time because a same-round
    /// move landed first and made them welfare-decreasing (the player
    /// retries against fresh loads next sweep). Benign coordination — like
    /// hellos/goodbyes, not degradation — so not part of
    /// [`Self::is_clean`].
    #[serde(default)]
    pub conflicts: usize,
    /// Graceful evictions, in order.
    pub evictions: Vec<Eviction>,
}

impl DegradationReport {
    /// Whether the run saw no degradation at all (protocol bring-up
    /// messages — hellos and goodbyes — are not degradation).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.drops == 0
            && self.duplicates == 0
            && self.stale == 0
            && self.retries == 0
            && self.timeouts == 0
            && self.invalid_replies == 0
            && self.clamped_replies == 0
            && self.evictions.is_empty()
    }

    /// The evicted OLEV indices, in eviction order.
    #[must_use]
    pub fn evicted(&self) -> Vec<usize> {
        self.evictions.iter().map(|e| e.olev).collect()
    }

    /// The OLEVs of an `n`-player game that survived to the end.
    #[must_use]
    pub fn survivors(&self, n: usize) -> Vec<usize> {
        let gone = self.evicted();
        (0..n).filter(|i| !gone.contains(i)).collect()
    }

    /// Folds another report into this one: every counter sums, and the
    /// eviction lists interleave in `at_update` order (ties keep `self`'s
    /// entries first). A deployment that runs the protocol core behind a
    /// transport accumulates degradation in *two* places — the session
    /// layer (shed, disconnected, malformed-frame evictions) and the
    /// in-process core — and callers previously had to pick one; merging
    /// yields a single account of the whole run.
    pub fn merge(&mut self, other: &DegradationReport) {
        self.offers_sent += other.offers_sent;
        self.drops += other.drops;
        self.duplicates += other.duplicates;
        self.stale += other.stale;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.invalid_replies += other.invalid_replies;
        self.clamped_replies += other.clamped_replies;
        self.hellos += other.hellos;
        self.goodbyes += other.goodbyes;
        self.conflicts += other.conflicts;
        self.evictions.extend(other.evictions.iter().cloned());
        self.evictions.sort_by_key(|e| e.at_update);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn verdicts_are_pure_functions_of_event_coordinates() {
        let plan = FaultPlan::new(7)
            .drop_probability(0.3)
            .duplicate_probability(0.2)
            .max_delay_ms(5);
        for olev in 0..4 {
            for seq in 0..50u64 {
                assert_eq!(plan.uplink(olev, seq, 0), plan.uplink(olev, seq, 0));
                assert_eq!(plan.uplink(olev, seq, 3), plan.uplink(olev, seq, 3));
            }
        }
        // Different coordinates give (eventually) different verdicts.
        let all: Vec<LinkVerdict> = (0..200).map(|s| plan.uplink(0, s, 0)).collect();
        assert!(all.iter().any(|v| v.dropped));
        assert!(all.iter().any(|v| !v.dropped));
    }

    #[test]
    fn seeds_decorrelate_plans() {
        let a = FaultPlan::new(1).drop_probability(0.5);
        let b = FaultPlan::new(2).drop_probability(0.5);
        let diverges = (0..100u64).any(|s| a.uplink(0, s, 0).dropped != b.uplink(0, s, 0).dropped);
        assert!(
            diverges,
            "independent seeds should produce different fault traces"
        );
    }

    #[test]
    fn empirical_drop_rate_tracks_the_knob() {
        let plan = FaultPlan::new(99).drop_probability(0.2);
        let drops = (0..5000u64)
            .filter(|&s| plan.uplink(1, s, 0).dropped)
            .count();
        let rate = drops as f64 / 5000.0;
        assert!((rate - 0.2).abs() < 0.03, "empirical drop rate {rate}");
    }

    #[test]
    fn lossless_plan_injects_nothing() {
        let plan = FaultPlan::new(123);
        assert!(plan.is_lossless());
        for seq in 0..100u64 {
            assert_eq!(plan.uplink(0, seq, 0), LinkVerdict::CLEAN);
            assert!(!plan.worker_stalls(0, seq));
            assert!(plan.corrupted_total(0, seq).is_none());
        }
        assert_eq!(plan.crash_point(0), None);
        assert!(plan.departures_at(10).is_empty());
    }

    #[test]
    fn corrupted_totals_are_actually_invalid_or_extreme() {
        let plan = FaultPlan::new(5).corrupt_probability(1.0);
        for e in 0..50u64 {
            let t = plan.corrupted_total(2, e).expect("p = 1 always corrupts");
            assert!(
                !t.is_finite() || !(0.0..=1.0e6).contains(&t),
                "harmless corruption {t}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn out_of_range_probability_rejected() {
        let _ = FaultPlan::new(0).drop_probability(1.5);
    }

    #[test]
    fn lossy_link_applies_verdicts() {
        let plan = FaultPlan::new(11)
            .drop_probability(0.4)
            .duplicate_probability(0.3);
        let (tx, rx) = unbounded::<u64>();
        let link = LossyLink::new(tx, 0, Some(&plan));
        let mut expected = 0u32;
        for seq in 0..200u64 {
            let verdict = link.send(seq, 0, seq).unwrap();
            assert_eq!(verdict, plan.uplink(0, seq, 0));
            expected += verdict.copies();
        }
        drop(link);
        assert_eq!(rx.iter().count(), expected as usize);
    }

    #[test]
    fn reliable_link_forwards_everything_once() {
        let (tx, rx) = unbounded::<u32>();
        let link: LossyLink<'_, u32> = LossyLink::new(tx, 0, None);
        for i in 0..20 {
            assert_eq!(link.send(u64::from(i), 0, i).unwrap(), LinkVerdict::CLEAN);
        }
        drop(link);
        assert_eq!(rx.iter().count(), 20);
    }

    #[test]
    fn report_cleanliness_and_survivors() {
        let mut r = DegradationReport {
            hellos: 4,
            goodbyes: 4,
            ..DegradationReport::default()
        };
        assert!(r.is_clean(), "bring-up traffic is not degradation");
        r.evictions.push(Eviction {
            olev: 2,
            at_update: 17,
            reason: EvictionReason::Departed,
        });
        assert!(!r.is_clean());
        assert_eq!(r.evicted(), vec![2]);
        assert_eq!(r.survivors(4), vec![0, 1, 3]);
    }

    #[test]
    fn merge_sums_counters_and_interleaves_evictions() {
        let mut service_side = DegradationReport {
            offers_sent: 10,
            drops: 1,
            retries: 2,
            timeouts: 3,
            hellos: 4,
            ..DegradationReport::default()
        };
        service_side.evictions.push(Eviction {
            olev: 0,
            at_update: 5,
            reason: EvictionReason::Unresponsive,
        });
        service_side.evictions.push(Eviction {
            olev: 3,
            at_update: 20,
            reason: EvictionReason::Departed,
        });
        let mut in_process = DegradationReport {
            offers_sent: 7,
            duplicates: 2,
            stale: 1,
            invalid_replies: 1,
            clamped_replies: 1,
            goodbyes: 4,
            conflicts: 1,
            ..DegradationReport::default()
        };
        in_process.evictions.push(Eviction {
            olev: 1,
            at_update: 9,
            reason: EvictionReason::Misbehaving,
        });
        service_side.merge(&in_process);
        assert_eq!(service_side.offers_sent, 17);
        assert_eq!(service_side.drops, 1);
        assert_eq!(service_side.duplicates, 2);
        assert_eq!(service_side.stale, 1);
        assert_eq!(service_side.retries, 2);
        assert_eq!(service_side.timeouts, 3);
        assert_eq!(service_side.invalid_replies, 1);
        assert_eq!(service_side.clamped_replies, 1);
        assert_eq!(service_side.hellos, 4);
        assert_eq!(service_side.goodbyes, 4);
        assert_eq!(service_side.conflicts, 1);
        assert_eq!(service_side.evicted(), vec![0, 1, 3], "at_update order");

        // Merging an empty report is the identity.
        let snapshot = service_side.clone();
        service_side.merge(&DegradationReport::default());
        assert_eq!(service_side, snapshot);
    }

    #[test]
    fn eviction_reasons_display() {
        assert!(EvictionReason::Unresponsive
            .to_string()
            .contains("retry budget"));
        assert!(EvictionReason::Crashed("boom".into())
            .to_string()
            .contains("boom"));
        assert!(EvictionReason::Departed.to_string().contains("departed"));
        assert!(EvictionReason::Misbehaving.to_string().contains("invalid"));
    }
}
