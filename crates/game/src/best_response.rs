//! The OLEV's best response (Lemma IV.3).
//!
//! Facing the posted payment function `Ψ_n`, OLEV `n` maximizes its utility
//! `F_n(p_n) = U_n(p_n) − Ψ_n(p_n)` over `[0, P_OLEV]`. `U_n` is strictly
//! concave and `Ψ_n` convex with non-decreasing marginal (the water level
//! rises with the request), so the first-order condition
//! `U'_n(p_n) = Ψ'_n(p_n)` has at most one root; the three cases of Eq. 22
//! are exactly the boundary/interior split below. The marginal of the quote,
//! `Ψ'_n(p_n)`, is `Z'` at the water level `λ*(p_n)` — the grid never needs
//! to reveal the other OLEVs' schedules.
//!
//! For the water-filling scheduler the root is found in marginal-price space
//! (see [`demand_at_marginal`]): one bisection over `μ` with O(C) probes,
//! rather than a bisection over `p_n` whose every probe runs a full
//! water-filling level search. Greedy scheduling (the linear baseline) keeps
//! the request-space solve.

use crate::payment::{quote, Scheduler};
use crate::pricing::SectionCost;
use crate::satisfaction::Satisfaction;
use crate::waterfill::{demand_at_marginal, Allocation};

/// Bisection iterations for the interior root of Eq. 22.
const BISECT_ITERS: usize = 60;

/// The outcome of one best response.
#[derive(Debug, Clone, PartialEq)]
pub struct BestResponse {
    /// The optimal total request `p*_n`.
    pub total: f64,
    /// The grid's schedule for it.
    pub allocation: Allocation,
    /// The payment `Ψ_n(p*_n)`.
    pub payment: f64,
    /// The achieved utility `F_n = U_n − Ψ_n`.
    pub utility: f64,
}

/// Computes OLEV `n`'s best response (Lemma IV.3 / Eq. 22).
///
/// `loads_excl` is `P_{-n,c}`; `p_max` is the Eq. 2/3 capacity bound.
///
/// # Panics
///
/// Panics if `p_max` is negative or inputs are inconsistent lengths.
#[must_use]
pub fn best_response(
    satisfaction: &dyn Satisfaction,
    cost: &SectionCost,
    caps: &[f64],
    loads_excl: &[f64],
    p_max: f64,
    scheduler: Scheduler,
) -> BestResponse {
    assert!(
        p_max >= 0.0 && p_max.is_finite(),
        "p_max must be non-negative"
    );
    assert_eq!(caps.len(), loads_excl.len(), "caps/loads length mismatch");

    // The fast path: for a strictly convex cost with a closed-form `Z'⁻¹`,
    // the FOC is solved by a single bisection in marginal-price space
    // instead of nesting a water-filling level search inside every probe.
    if scheduler == Scheduler::WaterFilling {
        if let Some(br) = waterfilling_response(satisfaction, cost, caps, loads_excl, p_max) {
            return br;
        }
    }

    let marginal_at = |p: f64| scheduler.allocate(cost, caps, loads_excl, p).marginal;
    let foc = |p: f64| satisfaction.derivative(p) - marginal_at(p);

    // Eq. 22, case 1: already unprofitable at zero.
    let total = if p_max == 0.0 || foc(0.0) <= 0.0 {
        0.0
    } else if foc(p_max) >= 0.0 {
        // Case 2: still profitable at the capacity bound.
        p_max
    } else {
        // Case 3: interior root by bisection (U' decreasing, Ψ' increasing).
        let (mut lo, mut hi) = (0.0, p_max);
        for _ in 0..BISECT_ITERS {
            let mid = 0.5 * (lo + hi);
            if foc(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };

    let q = quote(cost, caps, loads_excl, scheduler, total);
    let utility = satisfaction.value(total) - q.payment;
    BestResponse {
        total,
        allocation: q.allocation,
        payment: q.payment,
        utility,
    }
}

/// Eq. 22 solved in marginal-price space.
///
/// The grid's quote has marginal `Ψ'_n(p) = μ` where `A(μ) = p` and
/// `A(μ) = Σ_c [Z'⁻¹(μ) − P_{-n,c}]⁺` ([`demand_at_marginal`]) is the
/// non-decreasing total the water-filling schedule hands out at price level
/// `μ`. The interior FOC `U'(p) = Ψ'(p)` therefore reads
/// `g(μ) = U'(A(μ)) − μ = 0` with `g` strictly decreasing, bracketed by
/// `[min_c Z'(P_{-n,c}), U'(0)]`. One bisection in `μ` with O(C) probes
/// replaces a bisection in `p` whose every probe was itself a full O(C)
/// water-filling level search — the hot-path cost per best response drops
/// from O(iters² · C) to O(iters · C).
///
/// Returns `None` (caller falls back to the total-request-space solve) when
/// the cost lacks a closed-form `Z'⁻¹` or the satisfaction has an unbounded
/// marginal at zero.
fn waterfilling_response(
    satisfaction: &dyn Satisfaction,
    cost: &SectionCost,
    caps: &[f64],
    loads_excl: &[f64],
    p_max: f64,
) -> Option<BestResponse> {
    // Ψ'(0): the cheapest section's current marginal cost.
    let mu_min = caps
        .iter()
        .zip(loads_excl)
        .map(|(&cap, &load)| cost.z_prime(load, cap))
        .fold(f64::INFINITY, f64::min);

    let u0 = satisfaction.derivative(0.0);
    let total = if p_max == 0.0 || u0 - mu_min <= 0.0 {
        // Case 1: already unprofitable at zero.
        0.0
    } else if demand_at_marginal(cost, caps, loads_excl, satisfaction.derivative(p_max))? >= p_max {
        // Case 2: still profitable at the capacity bound
        // (U'(p_max) ≥ Ψ'(p_max)  ⇔  A(U'(p_max)) ≥ p_max, A monotone).
        p_max
    } else {
        // Case 3: interior root of g(μ) = U'(A(μ)) − μ.
        if !u0.is_finite() {
            return None;
        }
        let (mut lo, mut hi) = (mu_min, u0);
        for _ in 0..BISECT_ITERS {
            let mid = 0.5 * (lo + hi);
            let demand = demand_at_marginal(cost, caps, loads_excl, mid)?;
            if satisfaction.derivative(demand) - mid > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        demand_at_marginal(cost, caps, loads_excl, 0.5 * (lo + hi))?.min(p_max)
    };

    let q = quote(cost, caps, loads_excl, Scheduler::WaterFilling, total);
    let utility = satisfaction.value(total) - q.payment;
    Some(BestResponse {
        total,
        allocation: q.allocation,
        payment: q.payment,
        utility,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::{LinearPricing, NonlinearPricing, OverloadPenalty, PricingPolicy};
    use crate::satisfaction::LogSatisfaction;

    fn nl_cost() -> SectionCost {
        SectionCost::new(
            PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
            OverloadPenalty::new(0.15),
            0.9,
        )
    }

    #[test]
    fn interior_root_satisfies_foc() {
        let sat = LogSatisfaction::new(1.0);
        let cost = nl_cost();
        let caps = [60.0; 4];
        let loads = [0.0; 4];
        let br = best_response(&sat, &cost, &caps, &loads, 500.0, Scheduler::WaterFilling);
        assert!(br.total > 0.0 && br.total < 500.0);
        let marginal = Scheduler::WaterFilling
            .allocate(&cost, &caps, &loads, br.total)
            .marginal;
        assert!(
            (sat.derivative(br.total) - marginal).abs() < 1e-6,
            "FOC residual at p*={}",
            br.total
        );
    }

    #[test]
    fn capacity_bound_binds_for_eager_olev() {
        // A huge satisfaction weight: always worth taking the maximum.
        let sat = LogSatisfaction::new(1000.0);
        let br = best_response(
            &sat,
            &nl_cost(),
            &[60.0; 4],
            &[0.0; 4],
            30.0,
            Scheduler::WaterFilling,
        );
        assert_eq!(br.total, 30.0);
    }

    #[test]
    fn zero_response_when_price_exceeds_marginal_satisfaction() {
        // Congested sections and a lukewarm OLEV: requesting is unprofitable.
        let sat = LogSatisfaction::new(0.001);
        let cost = nl_cost();
        let loads = [55.0; 4]; // past the knee, Z' is steep
        let br = best_response(
            &sat,
            &cost,
            &[60.0; 4],
            &loads,
            30.0,
            Scheduler::WaterFilling,
        );
        assert_eq!(br.total, 0.0);
        assert_eq!(br.payment, 0.0);
        assert_eq!(br.utility, 0.0);
    }

    #[test]
    fn zero_capacity_yields_zero() {
        let sat = LogSatisfaction::new(10.0);
        let br = best_response(
            &sat,
            &nl_cost(),
            &[60.0],
            &[0.0],
            0.0,
            Scheduler::WaterFilling,
        );
        assert_eq!(br.total, 0.0);
    }

    #[test]
    fn best_response_is_a_maximizer() {
        // Sample the utility curve: no sampled request may beat p*.
        let sat = LogSatisfaction::new(2.0);
        let cost = nl_cost();
        let caps = [60.0; 3];
        let loads = [12.0, 40.0, 3.0];
        let br = best_response(&sat, &cost, &caps, &loads, 200.0, Scheduler::WaterFilling);
        for i in 0..=40 {
            let p = i as f64 * 5.0;
            let q = quote(&cost, &caps, &loads, Scheduler::WaterFilling, p);
            let u = sat.value(p) - q.payment;
            assert!(u <= br.utility + 1e-6, "p={p} gives {u} > {}", br.utility);
        }
    }

    #[test]
    fn marginal_space_solve_matches_request_space_solve() {
        // The μ-space fast path must land on the same root the pre-existing
        // request-space bisection finds, across boundary and interior cases.
        let cost = nl_cost();
        let caps = [60.0, 45.0, 80.0, 60.0];
        let loads = [12.0, 40.0, 3.0, 55.0];
        for (weight, p_max) in [
            (0.001, 30.0),  // case 1: zero response
            (1000.0, 25.0), // case 2: bound binds
            (2.0, 200.0),   // case 3: interior root
            (0.7, 90.0),    // another interior root
        ] {
            let sat = LogSatisfaction::new(weight);
            let fast = best_response(&sat, &cost, &caps, &loads, p_max, Scheduler::WaterFilling);
            // Reproduce the request-space solve the fast path replaced.
            let marginal_at = |p: f64| {
                Scheduler::WaterFilling
                    .allocate(&cost, &caps, &loads, p)
                    .marginal
            };
            let foc = |p: f64| sat.derivative(p) - marginal_at(p);
            let slow_total = if foc(0.0) <= 0.0 {
                0.0
            } else if foc(p_max) >= 0.0 {
                p_max
            } else {
                let (mut lo, mut hi) = (0.0, p_max);
                for _ in 0..BISECT_ITERS {
                    let mid = 0.5 * (lo + hi);
                    if foc(mid) > 0.0 {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                0.5 * (lo + hi)
            };
            assert!(
                (fast.total - slow_total).abs() < 1e-6,
                "w={weight}: μ-space {} vs p-space {slow_total}",
                fast.total
            );
        }
    }

    #[test]
    fn linear_policy_has_closed_form_response() {
        // Under linear pricing below the knees, Ψ' = β̃, so the interior
        // optimum is U'(p) = β̃ ⇒ p = w/β̃ − 1.
        let sat = LogSatisfaction::new(1.0);
        let lin = SectionCost::new(
            PricingPolicy::Linear(LinearPricing::paper_default(15.0)),
            OverloadPenalty::new(0.15),
            0.9,
        );
        // Plenty of knee headroom so the overload never engages.
        let caps = [2000.0; 4];
        let loads = [0.0; 4];
        let br = best_response(&sat, &lin, &caps, &loads, 5000.0, Scheduler::Greedy);
        let expected = 1.0 / 0.015 - 1.0;
        assert!(
            (br.total - expected).abs() < 1e-3,
            "{} vs {expected}",
            br.total
        );
    }

    #[test]
    fn congestion_lowers_the_response() {
        let sat = LogSatisfaction::new(1.0);
        let cost = nl_cost();
        let caps = [60.0; 4];
        let idle = best_response(
            &sat,
            &cost,
            &caps,
            &[0.0; 4],
            500.0,
            Scheduler::WaterFilling,
        );
        let busy = best_response(
            &sat,
            &cost,
            &caps,
            &[45.0; 4],
            500.0,
            Scheduler::WaterFilling,
        );
        assert!(busy.total < idle.total, "{} !< {}", busy.total, idle.total);
    }
}
