//! Fairness metrics on equilibrium allocations.
//!
//! The paper maximizes the *sum* of satisfactions; a natural follow-up
//! question is how that sum is split. This module measures it: Jain's
//! fairness index over received power, the same index weighted by
//! satisfaction eagerness, and the min/max share ratio. With identical
//! OLEVs the water-filled equilibrium is perfectly fair (index 1); with
//! heterogeneous weights the log satisfaction's diminishing returns keep
//! the index high — quantified in tests.

use oes_telemetry::Telemetry;
use oes_units::OlevId;

use crate::engine::Game;

/// Fairness measures over the per-OLEV totals of a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessReport {
    /// Jain's index `(Σx)² / (n·Σx²)` over received power, in `(0, 1]`.
    pub jain_index: f64,
    /// Jain's index over `x_n / w_n` (power per unit of eagerness) — the
    /// proportional-fairness view.
    pub weighted_jain_index: f64,
    /// `min(x) / max(x)` over received power (0 when someone gets nothing).
    pub min_max_ratio: f64,
}

/// Jain's fairness index of a slice; 1.0 for an empty or all-zero slice by
/// convention (nothing is unfairly split).
#[must_use]
pub fn jain_index(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq_sum: f64 = values.iter().map(|v| v * v).sum();
    if sq_sum <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sq_sum)
}

/// Computes the fairness report at a game's current schedule.
///
/// Weights are read from each OLEV's marginal satisfaction at zero (equal to
/// `w` for the log family).
#[must_use]
pub fn fairness_report(game: &Game) -> FairnessReport {
    fairness_report_with(game, &Telemetry::disabled())
}

/// [`fairness_report`] with telemetry: the computation runs inside a
/// `fairness.report` span (timed on the handle's [`oes_telemetry::Clock`],
/// not the wall) and each index is emitted as a `fairness.*` gauge.
#[must_use]
pub fn fairness_report_with(game: &Game, telemetry: &Telemetry) -> FairnessReport {
    let span = telemetry.span("fairness.report", -1);
    let totals: Vec<f64> = (0..game.olev_count())
        .map(|n| game.schedule().olev_total(OlevId(n)))
        .collect();
    let weights: Vec<f64> = game
        .satisfactions()
        .iter()
        .map(|s| s.derivative(0.0).max(1e-12))
        .collect();
    let per_weight: Vec<f64> = totals.iter().zip(&weights).map(|(x, w)| x / w).collect();
    let max = totals.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
    let min = totals.iter().fold(f64::INFINITY, |m, &x| m.min(x));
    let report = FairnessReport {
        jain_index: jain_index(&totals),
        weighted_jain_index: jain_index(&per_weight),
        min_max_ratio: if max > 0.0 { (min / max).max(0.0) } else { 1.0 },
    };
    drop(span);
    telemetry.gauge("fairness.jain", -1, report.jain_index);
    telemetry.gauge("fairness.weighted_jain", -1, report.weighted_jain_index);
    telemetry.gauge("fairness.min_max", -1, report.min_max_ratio);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GameBuilder;
    use crate::engine::UpdateOrder;
    use oes_units::Kilowatts;

    #[test]
    fn jain_index_basics() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One hog among n: index → 1/n.
        assert!((jain_index(&[10.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        let mixed = jain_index(&[4.0, 2.0]);
        assert!(mixed > 0.25 && mixed < 1.0);
    }

    #[test]
    fn identical_olevs_split_perfectly() {
        let mut g = GameBuilder::new()
            .sections(10, Kilowatts::new(30.0))
            .olevs(6, Kilowatts::new(50.0))
            .build()
            .unwrap();
        g.run(UpdateOrder::RoundRobin, 10_000).unwrap();
        let f = fairness_report(&g);
        assert!(f.jain_index > 1.0 - 1e-9, "index {}", f.jain_index);
        assert!(f.min_max_ratio > 1.0 - 1e-9);
    }

    #[test]
    fn heterogeneous_weights_stay_reasonably_fair() {
        let mut g = GameBuilder::new()
            .sections(10, Kilowatts::new(30.0))
            .olevs_weighted(3, Kilowatts::new(50.0), 2.0)
            .olevs_weighted(3, Kilowatts::new(50.0), 0.5)
            .build()
            .unwrap();
        g.run(UpdateOrder::RoundRobin, 10_000).unwrap();
        let f = fairness_report(&g);
        // Eager OLEVs take more (raw index < 1) but the log family's
        // diminishing returns keep the split from collapsing.
        assert!(f.jain_index < 1.0 - 1e-6);
        assert!(f.jain_index > 0.6, "index {}", f.jain_index);
        assert!(f.min_max_ratio > 0.1);
    }

    #[test]
    fn instrumented_report_matches_and_emits_gauges() {
        use oes_telemetry::{RingBufferRecorder, Telemetry};
        use std::sync::Arc;

        let mut g = GameBuilder::new()
            .sections(6, Kilowatts::new(30.0))
            .olevs(4, Kilowatts::new(50.0))
            .build()
            .unwrap();
        g.run(UpdateOrder::RoundRobin, 5_000).unwrap();
        let ring = Arc::new(RingBufferRecorder::new(16));
        let telemetry = Telemetry::new(ring.clone());
        let instrumented = fairness_report_with(&g, &telemetry);
        assert_eq!(instrumented, fairness_report(&g));
        assert_eq!(
            ring.last_gauge("fairness.jain"),
            Some(instrumented.jain_index)
        );
        assert_eq!(
            ring.last_gauge("fairness.min_max"),
            Some(instrumented.min_max_ratio)
        );
    }

    #[test]
    fn empty_schedule_is_trivially_fair() {
        let g = GameBuilder::new()
            .sections(3, Kilowatts::new(30.0))
            .olevs(2, Kilowatts::new(50.0))
            .build()
            .unwrap();
        let f = fairness_report(&g);
        assert_eq!(f.jain_index, 1.0);
        assert_eq!(f.min_max_ratio, 1.0);
    }
}
