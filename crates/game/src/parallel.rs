//! Deterministic parallel best-response sweeps.
//!
//! Theorem IV.1 proves the asynchronous best-response dynamics converge even
//! when players respond to *stale* observations of the others' schedules —
//! the same license the decentralized runtime
//! ([`crate::distributed::StaleDistributedGame`]) exercises across threads
//! with bounded-staleness reads. This module exercises it in-process, at
//! fleet scale: each *round* freezes a snapshot of the cached section loads
//! (the O(C) aggregates maintained by [`crate::schedule::PowerSchedule`]),
//! fans a batch of players out across `K` shard worker threads that compute
//! best responses (Lemma IV.3) against that snapshot, then applies the
//! returned moves **sequentially, in the sweep order** — so the result is a
//! pure function of `(scenario, seed, config)` and never of thread timing.
//!
//! Simultaneous best responses alone can limit-cycle (two players reacting
//! to the same snapshot repeatedly overshoot each other — the classic
//! failure of Jacobi dynamics in congestion games), so the apply phase
//! re-validates every move against the *current* state: the game is an
//! exact potential game, so a unilateral row change moves the welfare `W`
//! by exactly the player's utility change, an O(C) check. Moves a
//! same-round predecessor turned welfare-decreasing are discarded as
//! [conflicts](crate::DegradationReport::conflicts) and recomputed against
//! fresh loads next sweep. Applied moves therefore ascend the potential
//! monotonically, which rules out limit cycles under any batch size.
//!
//! One residual mode remains: near the optimum the potential is flat, so
//! players can trade welfare-*neutral* micro-moves that the guard admits but
//! snapshot staleness never damps. The engine detects the stall (per-sweep
//! progress below [`PARALLEL_ENDGAME_FACTOR`] × tolerance, or
//! [`PARALLEL_STALL_SWEEPS`] sweeps without geometric progress) and finishes
//! with fresh-load rounds of one — exact serial semantics for the tail,
//! which is a negligible share of the run's updates.
//!
//! Determinism contract:
//!
//! - Same seed + same [`ParallelConfig`] ⇒ bit-identical trajectories,
//!   schedules, and outcomes, on any machine, at any core count.
//! - `shards == 1` delegates to the serial engine ([`crate::Game::run_with`])
//!   and is therefore bit-identical to it.
//! - `shards > 1` is *Jacobi-within-batch*: players in one round respond to
//!   the same snapshot instead of each other's fresh moves, so trajectories
//!   differ from serial Gauss–Seidel ones — but both converge to the unique
//!   welfare maximizer (the potential function argument of Theorem IV.1),
//!   which the equivalence tests pin to within `1e-9` in welfare.
//! - [`ApplyMode::Partitioned`] moves the guard-and-commit work off the
//!   coordinator: moves with disjoint section footprints are guarded and
//!   committed concurrently, then merged in deterministic sweep order. The
//!   mode keeps the bit-identical-replay guarantee within itself and agrees
//!   with the serialized oracle to within `1e-9` in welfare (see
//!   [`ApplyMode`] for the contract).
//!
//! Telemetry (all emitted from the coordinator thread, so journals stay
//! deterministic): an `engine.parallel.sweep` span per sweep,
//! `engine.parallel.rounds` / `engine.parallel.dropped` /
//! `engine.parallel.conflicts` counters, an `engine.parallel.partitions`
//! counter per partitioned round (value = number of footprint groups), an
//! `engine.parallel.shards` gauge at run start, and the same per-update
//! `engine.welfare` / `engine.congestion` / `engine.change` gauges the serial
//! engine emits.
//!
//! Fault plans ([`crate::FaultPlan`]) compose with parallel sweeps: uplink
//! verdicts can drop a computed move (the player simply retries next sweep —
//! a bounded-staleness event, not an error), scheduled departures and crash
//! points evict players mid-run exactly as the decentralized coordinator
//! would, and the convergence quorum shrinks to the survivors.

use std::sync::mpsc;
use std::thread;

use oes_telemetry::Telemetry;
use oes_units::OlevId;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::best_response::{best_response, BestResponse};
use crate::engine::{Game, Outcome, Snapshot, UpdateOrder};
use crate::error::GameError;
use crate::faults::{DegradationReport, Eviction, EvictionReason, FaultPlan};
use crate::payment::{payment_for_schedule, Scheduler};
use crate::pricing::SectionCost;
use crate::satisfaction::Satisfaction;
use crate::state::ScheduleState;

/// Default batch size per shard: each round carries
/// `shards × DEFAULT_BATCH_PER_SHARD` players, enough work per dispatch to
/// amortize the channel round-trip while keeping the within-round staleness
/// window small relative to a sweep.
pub const DEFAULT_BATCH_PER_SHARD: usize = 8;

/// Endgame trigger, as a multiple of the convergence tolerance: once a full
/// sweep's largest applied change falls below `tolerance ×` this factor, the
/// engine switches to fresh-load rounds of one (exact serial semantics) to
/// finish. Near the flat top of the potential, snapshot staleness sustains
/// welfare-neutral micro-oscillation that batched sweeps cannot contract;
/// the tail is a negligible fraction of the run, so serializing it costs
/// almost nothing and restores the serial convergence proof.
pub const PARALLEL_ENDGAME_FACTOR: f64 = 1e3;

/// Endgame stall trigger: if this many consecutive sweeps fail to halve the
/// best per-sweep max change seen so far, progress has stalled (an
/// oscillation the potential guard admits because it is welfare-neutral)
/// and the engine switches to the serial endgame regardless of scale.
pub const PARALLEL_STALL_SWEEPS: usize = 8;

/// How a round's computed moves are guarded and committed.
///
/// The guard-and-apply loop is the scaling bottleneck of the serialized
/// path: each apply costs four full-width payment evaluations on the
/// coordinator thread, so K=8 sweeps run no faster than K=1 (the committed
/// parallel baseline documents this). But a move's guard and its commit
/// only read and write sections in the move's *footprint* — the union of
/// the current row's support and the proposed shares' support — because
/// zero entries contribute exactly `+0.0` to every payment sum. Moves whose
/// footprints are disjoint therefore commute exactly, and the partitioned
/// mode exploits that: it groups a round's moves by footprint overlap
/// (union-find over sections), ships each group to a shard worker that
/// guards and locally applies it against partition-local loads, and merges
/// the accepted deltas on the coordinator in deterministic sweep order
/// through the sparse O(footprint) commit path.
///
/// Tolerance contract (same shape as `ScanMode::NaiveScan` in the traffic
/// crate): each mode is bit-identically replayable *within itself* — same
/// seed, same [`ParallelConfig`] ⇒ same bits, on any machine — and the two
/// modes agree on converged welfare to within `1e-9`. The serialized mode
/// stays the default and the bit-identity oracle; partitioned trajectories
/// may differ from it in the last ulps because partition-local guard
/// arithmetic sums payments over the footprint only and cached-load resyncs
/// land at different points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApplyMode {
    /// Guard and commit every move sequentially on the coordinator thread,
    /// in sweep order — the original path and the bit-identity oracle.
    #[default]
    Serialized,
    /// Partition each round's moves by section-footprint overlap and let
    /// shard workers guard and commit each partition concurrently against
    /// partition-local loads; the coordinator merges partition deltas in
    /// deterministic sweep order via the sparse commit path.
    Partitioned,
}

/// Opt-in configuration for [`Game::run_parallel`].
///
/// `shards` is the number of worker threads `K`; `batch` is how many players
/// respond to one frozen snapshot per round (the bounded-staleness window of
/// Theorem IV.1); `apply` picks the commit strategy ([`ApplyMode`]). All
/// three are part of the determinism key: changing any of them changes the
/// (still deterministic) trajectory.
///
/// # Examples
///
/// ```
/// use oes_game::{ApplyMode, ParallelConfig};
///
/// let serial = ParallelConfig::default();
/// assert_eq!((serial.shards, serial.batch), (1, 1));
/// assert_eq!(serial.apply, ApplyMode::Serialized);
/// let four = ParallelConfig::new(4);
/// assert_eq!(four.shards, 4);
/// assert_eq!(four.batch, 4 * oes_game::parallel::DEFAULT_BATCH_PER_SHARD);
/// let tuned = ParallelConfig::new(4).with_batch(64);
/// assert_eq!(tuned.batch, 64);
/// let partitioned = ParallelConfig::new(8).with_apply(ApplyMode::Partitioned);
/// assert_eq!(partitioned.apply, ApplyMode::Partitioned);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of shard worker threads `K`. `1` means the exact serial
    /// engine.
    pub shards: usize,
    /// Players dispatched against one snapshot per round.
    pub batch: usize,
    /// Commit strategy for the apply phase.
    pub apply: ApplyMode,
}

impl ParallelConfig {
    /// A `shards`-way configuration with the default batch of
    /// [`DEFAULT_BATCH_PER_SHARD`] players per shard.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            batch: shards.saturating_mul(DEFAULT_BATCH_PER_SHARD).max(1),
            apply: ApplyMode::Serialized,
        }
    }

    /// The serial configuration: one shard, one player per round —
    /// bit-identical to [`Game::run_with`].
    #[must_use]
    pub fn serial() -> Self {
        Self {
            shards: 1,
            batch: 1,
            apply: ApplyMode::Serialized,
        }
    }

    /// Overrides the per-round batch size.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Overrides the apply-phase commit strategy.
    #[must_use]
    pub fn with_apply(mut self, apply: ApplyMode) -> Self {
        self.apply = apply;
        self
    }

    fn validate(self) -> Result<(), GameError> {
        if self.shards == 0 {
            return Err(GameError::InvalidParameter {
                name: "parallel shards",
                value: 0.0,
            });
        }
        if self.batch == 0 {
            return Err(GameError::InvalidParameter {
                name: "parallel batch",
                value: 0.0,
            });
        }
        Ok(())
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::serial()
    }
}

/// One round's worth of work for one shard: a frozen loads snapshot plus the
/// players (and their current rows) assigned to this shard.
struct ShardTask {
    /// Chunk position within the round, used to reassemble results in sweep
    /// order regardless of completion order.
    slot: usize,
    /// Frozen `P_c` snapshot the whole round responds to.
    loads: Vec<f64>,
    /// `(olev, current row)` pairs; the row is subtracted from the snapshot
    /// to form `P_{-n,c}`.
    players: Vec<(usize, Vec<f64>)>,
}

type ShardMoves = Vec<(usize, BestResponse)>;

/// One pending move inside a partition commit, restricted to the
/// partition's footprint sections.
struct CommitMove {
    /// Player index.
    n: usize,
    /// Current row values at the partition footprint sections.
    row: Vec<f64>,
    /// Current cached total `p_n`.
    total: f64,
    /// Proposed shares at the partition footprint sections.
    shares: Vec<f64>,
    /// Proposed total `p*_n`.
    br_total: f64,
}

/// A partition of a round's moves whose footprints are disjoint from every
/// other partition's, shipped to a shard worker for concurrent
/// guard-and-commit against partition-local loads.
struct CommitTask {
    /// Partition position in deterministic merge order, used to reassemble
    /// verdicts regardless of completion order.
    slot: usize,
    /// Ascending section indices of the partition footprint.
    sections: Vec<usize>,
    /// Current loads at those sections.
    loads: Vec<f64>,
    /// The partition's moves, in sweep order.
    members: Vec<CommitMove>,
}

enum ShardJob {
    Compute(ShardTask),
    Commit(CommitTask),
}

enum ShardReply {
    Moves(usize, ShardMoves),
    /// Per-member `(accepted, |Δp_n|)` verdicts, in member order.
    Commits(usize, Vec<(bool, f64)>),
}

/// Guards and locally applies one partition's moves, replicating the
/// serialized apply arithmetic operation-for-operation on the footprint
/// slice: the subtract-then-clamp loads exclusion, the
/// [`payment_for_schedule`] guard against the evolving partition loads with
/// the same `-1e-12` threshold, and the clamp-and-delta load maintenance of
/// an accepted commit. Sections outside the footprint contribute exactly
/// `+0.0` to every payment sum (zero shares on non-negative loads), so the
/// footprint-restricted guard decides exactly as a full-width one would.
fn commit_partition(
    task: CommitTask,
    satisfactions: &[Box<dyn Satisfaction>],
    cost: &SectionCost,
    caps: &[f64],
) -> Vec<(bool, f64)> {
    let caps_fp: Vec<f64> = task.sections.iter().map(|&c| caps[c]).collect();
    let mut loads = task.loads;
    let mut loads_excl = vec![0.0; caps_fp.len()];
    let mut verdicts = Vec::with_capacity(task.members.len());
    for m in &task.members {
        for ((out, &load), &row) in loads_excl.iter_mut().zip(&loads).zip(&m.row) {
            *out = load - row;
            if *out < 0.0 {
                *out = 0.0;
            }
        }
        let f_old = satisfactions[m.n].value(m.total)
            - payment_for_schedule(cost, &caps_fp, &loads_excl, &m.row);
        let f_new = satisfactions[m.n].value(m.br_total)
            - payment_for_schedule(cost, &caps_fp, &loads_excl, &m.shares);
        if f_new - f_old < -1e-12 {
            verdicts.push((false, 0.0));
            continue;
        }
        for (i, &share) in m.shares.iter().enumerate() {
            let new = share.max(0.0);
            let delta = new - m.row[i];
            loads[i] = (loads[i] + delta).max(0.0);
        }
        verdicts.push((true, (m.br_total - m.total).abs()));
    }
    verdicts
}

/// Path-halving union-find over section indices; groups a round's moves by
/// footprint overlap. Roots are canonicalized to the smallest member so
/// grouping is a pure function of the footprints.
struct SectionDsu {
    parent: Vec<usize>,
}

impl SectionDsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn shard_worker(
    tasks: &mpsc::Receiver<ShardJob>,
    results: &mpsc::Sender<ShardReply>,
    satisfactions: &[Box<dyn Satisfaction>],
    cost: &SectionCost,
    caps: &[f64],
    p_max: &[f64],
    windows: &[(usize, usize)],
    scheduler: Scheduler,
) {
    let mut loads_excl = vec![0.0; caps.len()];
    while let Ok(job) = tasks.recv() {
        let reply = match job {
            ShardJob::Compute(task) => {
                let mut moves = Vec::with_capacity(task.players.len());
                for (n, row) in &task.players {
                    for (c, out) in loads_excl.iter_mut().enumerate() {
                        *out = (task.loads[c] - row[c]).max(0.0);
                    }
                    let (w0, w1) = windows[*n];
                    let mut br = best_response(
                        satisfactions[*n].as_ref(),
                        cost,
                        &caps[w0..w1],
                        &loads_excl[w0..w1],
                        p_max[*n],
                        scheduler,
                    );
                    if (w0, w1) != (0, caps.len()) {
                        // Scatter the windowed allocation to full width so
                        // the apply phase sees ordinary rows.
                        let mut shares = vec![0.0; caps.len()];
                        shares[w0..w1].copy_from_slice(&br.allocation.shares);
                        br.allocation.shares = shares;
                    }
                    moves.push((*n, br));
                }
                ShardReply::Moves(task.slot, moves)
            }
            ShardJob::Commit(task) => {
                let slot = task.slot;
                ShardReply::Commits(slot, commit_partition(task, satisfactions, cost, caps))
            }
        };
        if results.send(reply).is_err() {
            return;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn evict(
    n: usize,
    at_update: usize,
    reason: EvictionReason,
    state: &mut ScheduleState,
    satisfactions: &[Box<dyn Satisfaction>],
    cost: &SectionCost,
    caps: &[f64],
    active: &mut [bool],
    report: &mut DegradationReport,
    zero_row: &[f64],
) {
    active[n] = false;
    state.apply_row(OlevId(n), zero_row, satisfactions, cost, caps);
    if matches!(reason, EvictionReason::Departed) {
        report.goodbyes += 1;
    }
    report.evictions.push(Eviction {
        olev: n,
        at_update,
        reason,
    });
}

impl Game {
    /// Runs deterministic parallel best-response sweeps (see
    /// [`crate::parallel`]) until convergence or `max_updates`.
    ///
    /// With `config.shards == 1` this *is* [`Game::run`], bit for bit. With
    /// more shards, each sweep partitions the fleet into rounds of
    /// `config.batch` players whose best responses are computed concurrently
    /// against a frozen snapshot and applied in sweep order, so same-seed
    /// runs are bit-identical regardless of thread timing.
    ///
    /// Convergence: a full sweep in which every surviving player was polled,
    /// every move applied, and no total moved by the tolerance or more.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] for a zero shard or batch
    /// count, or any error the serial engine reports at `shards == 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use oes_game::{GameBuilder, ParallelConfig, UpdateOrder};
    /// use oes_units::Kilowatts;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let build = || GameBuilder::new()
    ///     .sections(8, Kilowatts::new(60.0))
    ///     .olevs(6, Kilowatts::new(40.0))
    ///     .build();
    /// let mut serial = build()?;
    /// let mut sharded = build()?;
    /// let a = serial.run(UpdateOrder::RoundRobin, 2_000)?;
    /// let b = sharded.run_parallel(
    ///     UpdateOrder::RoundRobin,
    ///     2_000,
    ///     ParallelConfig::new(2),
    /// )?;
    /// assert!(a.converged() && b.converged());
    /// // Same unique optimum (Theorem IV.1), whatever the sweep shape.
    /// assert!((a.final_welfare() - b.final_welfare()).abs() < 1e-9);
    /// # Ok(())
    /// # }
    /// ```
    pub fn run_parallel(
        &mut self,
        order: UpdateOrder,
        max_updates: usize,
        config: ParallelConfig,
    ) -> Result<Outcome, GameError> {
        self.run_parallel_with(order, max_updates, config, &Telemetry::disabled())
    }

    /// [`Game::run_parallel`] with telemetry (see the module docs for the
    /// `engine.parallel.*` namespace).
    ///
    /// # Errors
    ///
    /// As [`Game::run_parallel`].
    pub fn run_parallel_with(
        &mut self,
        order: UpdateOrder,
        max_updates: usize,
        config: ParallelConfig,
        telemetry: &Telemetry,
    ) -> Result<Outcome, GameError> {
        config.validate()?;
        if config.shards == 1 {
            // Bit-identity at K=1: the serial engine IS the K=1 semantics.
            return self.run_with(order, max_updates, telemetry);
        }
        Ok(self.run_sweeps(order, max_updates, config, None, telemetry))
    }

    /// [`Game::run_parallel`] under a deterministic fault plan: dropped
    /// uplinks discard that round's move (the player retries next sweep),
    /// scheduled departures and crash points evict players, and the
    /// convergence quorum shrinks to the survivors — the parallel analogue
    /// of the hardened decentralized coordinator.
    ///
    /// Runs the sweep engine at any `shards ≥ 1` (no serial delegation, so
    /// fault accounting is identical across K).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] for a zero shard or batch
    /// count.
    pub fn run_parallel_faulted(
        &mut self,
        order: UpdateOrder,
        max_updates: usize,
        config: ParallelConfig,
        plan: &FaultPlan,
        telemetry: &Telemetry,
    ) -> Result<Outcome, GameError> {
        config.validate()?;
        Ok(self.run_sweeps(order, max_updates, config, Some(plan), telemetry))
    }

    /// The sharded sweep core. Only ever called with validated config.
    fn run_sweeps(
        &mut self,
        order: UpdateOrder,
        max_updates: usize,
        config: ParallelConfig,
        plan: Option<&FaultPlan>,
        telemetry: &Telemetry,
    ) -> Outcome {
        let n_olevs = self.olev_count();
        let shards = config.shards;
        let batch = config.batch;
        let tolerance = self.tolerance;
        // Disjoint field borrows: workers share the immutable environment,
        // the coordinator alone mutates the schedule state between rounds.
        let satisfactions = &self.satisfactions;
        let caps = &self.caps;
        let cost = &self.cost;
        let p_max = &self.p_max;
        let windows = &self.windows;
        let scheduler = self.scheduler;
        let state = &mut self.state;

        let mut rng = match order {
            UpdateOrder::Random { seed } => Some(ChaCha8Rng::seed_from_u64(seed)),
            UpdateOrder::RoundRobin => None,
        };
        let mut order_buf: Vec<usize> = (0..n_olevs).collect();
        let mut active = vec![true; n_olevs];
        let mut replies = vec![0usize; n_olevs];
        let mut offer_seq = vec![0u64; n_olevs];
        let zero_row = vec![0.0; caps.len()];
        let mut scratch_excl: Vec<f64> = Vec::with_capacity(caps.len());
        let mut report = DegradationReport::default();
        let mut trajectory = Vec::with_capacity(max_updates.min(4096));
        let mut updates = 0usize;
        let mut converged = false;

        telemetry.gauge("engine.parallel.shards", -1, shards as f64);
        if let Some(plan) = plan {
            for n in plan.departures_at(0) {
                if active[n] {
                    evict(
                        n,
                        0,
                        EvictionReason::Departed,
                        state,
                        satisfactions,
                        cost,
                        caps,
                        &mut active,
                        &mut report,
                        &zero_row,
                    );
                }
            }
        }

        thread::scope(|scope| {
            let (result_tx, result_rx) = mpsc::channel::<ShardReply>();
            let mut task_txs = Vec::with_capacity(shards);
            for _ in 0..shards {
                let (task_tx, task_rx) = mpsc::channel::<ShardJob>();
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    shard_worker(
                        &task_rx,
                        &result_tx,
                        satisfactions,
                        cost,
                        caps,
                        p_max,
                        windows,
                        scheduler,
                    );
                });
                task_txs.push(task_tx);
            }
            drop(result_tx);

            let mut sweep = 0usize;
            let mut current_batch = batch;
            let mut best_change = f64::INFINITY;
            let mut stalled = 0usize;
            'run: while updates < max_updates {
                let _sweep_span = telemetry.span("engine.parallel.sweep", sweep as i64);
                if let Some(r) = &mut rng {
                    // Seeded Fisher–Yates: the sweep order is a pure
                    // function of (seed, sweep index).
                    for i in (1..order_buf.len()).rev() {
                        let j = r.gen_range(0..=i);
                        order_buf.swap(i, j);
                    }
                }
                let mut sweep_players = Vec::with_capacity(n_olevs);
                for &n in &order_buf {
                    if !active[n] {
                        continue;
                    }
                    if let Some(plan) = plan {
                        if plan.crash_point(n).is_some_and(|k| replies[n] >= k) {
                            evict(
                                n,
                                updates,
                                EvictionReason::Crashed("crash point reached".into()),
                                state,
                                satisfactions,
                                cost,
                                caps,
                                &mut active,
                                &mut report,
                                &zero_row,
                            );
                            continue;
                        }
                    }
                    sweep_players.push(n);
                }
                if sweep_players.is_empty() {
                    break;
                }
                let mut sweep_max_change = 0.0f64;
                let mut sweep_polled = 0usize;
                let mut sweep_applied = 0usize;
                for round in sweep_players.chunks(current_batch) {
                    telemetry.counter("engine.parallel.rounds", -1, 1);
                    // Freeze the snapshot every round: all moves in a round
                    // respond to the same P_c, the bounded staleness window
                    // Theorem IV.1 tolerates.
                    let round_len = round.len();
                    let slots: Vec<Option<ShardMoves>> = if round_len == 1 {
                        // Fresh-load round of one (the endgame path, or a
                        // batch-1 config): computing inline skips the
                        // channel round-trip and is exactly the serial
                        // update.
                        let n = round[0];
                        let id = OlevId(n);
                        state.loads_excluding_into(id, &mut scratch_excl);
                        let (w0, w1) = windows[n];
                        let mut br = best_response(
                            satisfactions[n].as_ref(),
                            cost,
                            &caps[w0..w1],
                            &scratch_excl[w0..w1],
                            p_max[n],
                            scheduler,
                        );
                        if (w0, w1) != (0, caps.len()) {
                            let mut shares = vec![0.0; caps.len()];
                            shares[w0..w1].copy_from_slice(&br.allocation.shares);
                            br.allocation.shares = shares;
                        }
                        vec![Some(vec![(n, br)])]
                    } else {
                        let loads = state.schedule().loads().to_vec();
                        let chunk_len = round.len().div_ceil(shards);
                        let mut sent = 0usize;
                        for (slot, players) in round.chunks(chunk_len).enumerate() {
                            let task = ShardTask {
                                slot,
                                loads: loads.clone(),
                                players: players
                                    .iter()
                                    .map(|&n| (n, state.schedule().row(OlevId(n)).to_vec()))
                                    .collect(),
                            };
                            task_txs[slot]
                                .send(ShardJob::Compute(task))
                                .expect("shard worker alive");
                            sent += 1;
                        }
                        let mut slots: Vec<Option<ShardMoves>> = (0..sent).map(|_| None).collect();
                        for _ in 0..sent {
                            match result_rx.recv().expect("shard worker alive") {
                                ShardReply::Moves(slot, moves) => slots[slot] = Some(moves),
                                ShardReply::Commits(..) => {
                                    unreachable!("commit reply during compute phase")
                                }
                            }
                        }
                        slots
                    };
                    if matches!(config.apply, ApplyMode::Serialized) || round_len == 1 {
                        // Apply phase: sequential, in sweep order — the fixed
                        // seed-derived order that makes the run
                        // deterministic. Rounds of one (the endgame tail)
                        // always take this path: there is nothing to
                        // partition.
                        for (n, br) in slots.into_iter().flatten().flatten() {
                            if !active[n] {
                                continue;
                            }
                            sweep_polled += 1;
                            report.offers_sent += 1;
                            if let Some(plan) = plan {
                                let seq = offer_seq[n];
                                offer_seq[n] += 1;
                                let verdict = plan.uplink(n, seq, 0);
                                if verdict.dropped {
                                    // The move never reaches the grid: the
                                    // row stays stale and the player retries
                                    // next sweep — exactly the staleness
                                    // Theorem IV.1's bounded-asynchrony
                                    // argument covers.
                                    report.drops += 1;
                                    telemetry.counter("engine.parallel.dropped", n as i64, 1);
                                    continue;
                                }
                                if verdict.duplicated {
                                    // Second copy is discarded as already
                                    // applied, as the coordinator's
                                    // (olev, seq) dedup would.
                                    report.duplicates += 1;
                                }
                            }
                            let id = OlevId(n);
                            let before = state.schedule().olev_total(id);
                            // Potential-ascent guard: against the *current*
                            // loads, the welfare change of swapping this row
                            // in equals the player's utility change (exact
                            // potential). A same-round predecessor can have
                            // made the snapshot-computed move worsening —
                            // discard it and let the player respond to fresh
                            // loads next sweep.
                            state.loads_excluding_into(id, &mut scratch_excl);
                            let f_old = satisfactions[n].value(before)
                                - payment_for_schedule(
                                    cost,
                                    caps,
                                    &scratch_excl,
                                    state.schedule().row(id),
                                );
                            let f_new = satisfactions[n].value(br.total)
                                - payment_for_schedule(
                                    cost,
                                    caps,
                                    &scratch_excl,
                                    &br.allocation.shares,
                                );
                            if f_new - f_old < -1e-12 {
                                report.conflicts += 1;
                                telemetry.counter("engine.parallel.conflicts", n as i64, 1);
                                continue;
                            }
                            state.apply_row(id, &br.allocation.shares, satisfactions, cost, caps);
                            replies[n] += 1;
                            let change = (br.total - before).abs();
                            updates += 1;
                            sweep_applied += 1;
                            sweep_max_change = sweep_max_change.max(change);
                            let snapshot = Snapshot {
                                update: updates,
                                congestion: state.schedule().system_congestion(caps),
                                welfare: state.welfare(),
                                change,
                            };
                            let key = updates as i64;
                            telemetry.gauge("engine.welfare", key, snapshot.welfare);
                            telemetry.gauge("engine.congestion", key, snapshot.congestion);
                            telemetry.gauge("engine.change", key, snapshot.change);
                            trajectory.push(snapshot);
                            if let Some(plan) = plan {
                                for d in plan.departures_at(updates) {
                                    if active[d] {
                                        evict(
                                            d,
                                            updates,
                                            EvictionReason::Departed,
                                            state,
                                            satisfactions,
                                            cost,
                                            caps,
                                            &mut active,
                                            &mut report,
                                            &zero_row,
                                        );
                                    }
                                }
                            }
                            if updates >= max_updates {
                                break 'run;
                            }
                        }
                    } else {
                        // Partitioned apply (see [`ApplyMode::Partitioned`]).
                        //
                        // Phase 1: fault verdicts in sweep order — identical
                        // accounting to the serialized path — collecting the
                        // moves that survive the uplink.
                        let mut pending: Vec<(usize, BestResponse)> = Vec::new();
                        for (n, br) in slots.into_iter().flatten().flatten() {
                            if !active[n] {
                                continue;
                            }
                            sweep_polled += 1;
                            report.offers_sent += 1;
                            if let Some(plan) = plan {
                                let seq = offer_seq[n];
                                offer_seq[n] += 1;
                                let verdict = plan.uplink(n, seq, 0);
                                if verdict.dropped {
                                    report.drops += 1;
                                    telemetry.counter("engine.parallel.dropped", n as i64, 1);
                                    continue;
                                }
                                if verdict.duplicated {
                                    report.duplicates += 1;
                                }
                            }
                            pending.push((n, br));
                        }
                        // Phase 2: group by footprint overlap. A move's
                        // footprint is the support of its current row union
                        // the support of its proposed shares; its guard and
                        // commit read and write nothing outside it, so moves
                        // in different groups commute exactly.
                        let mut dsu = SectionDsu::new(caps.len());
                        let footprints: Vec<Vec<usize>> = pending
                            .iter()
                            .map(|&(n, ref br)| {
                                let row = state.schedule().row(OlevId(n));
                                let fp: Vec<usize> = (0..caps.len())
                                    .filter(|&c| row[c] > 0.0 || br.allocation.shares[c] > 0.0)
                                    .collect();
                                for w in fp.windows(2) {
                                    dsu.union(w[0], w[1]);
                                }
                                fp
                            })
                            .collect();
                        // Groups keyed by DSU root, ordered by first member
                        // in sweep order; footprint-free no-op moves get
                        // singleton groups.
                        let mut groups: Vec<Vec<usize>> = Vec::new();
                        let mut root_group = vec![usize::MAX; caps.len()];
                        for (i, fp) in footprints.iter().enumerate() {
                            match fp.first() {
                                None => groups.push(vec![i]),
                                Some(&c0) => {
                                    let root = dsu.find(c0);
                                    if root_group[root] == usize::MAX {
                                        root_group[root] = groups.len();
                                        groups.push(vec![i]);
                                    } else {
                                        groups[root_group[root]].push(i);
                                    }
                                }
                            }
                        }
                        telemetry.counter(
                            "engine.parallel.partitions",
                            sweep as i64,
                            groups.len() as u64,
                        );
                        // Phase 3: ship each partition to a shard worker for
                        // concurrent guard-and-commit against
                        // partition-local loads.
                        let mut verdict_slots: Vec<Option<Vec<(bool, f64)>>> =
                            (0..groups.len()).map(|_| None).collect();
                        for (g, members) in groups.iter().enumerate() {
                            let mut sections: Vec<usize> = members
                                .iter()
                                .flat_map(|&i| footprints[i].iter().copied())
                                .collect();
                            sections.sort_unstable();
                            sections.dedup();
                            let task = CommitTask {
                                slot: g,
                                loads: sections
                                    .iter()
                                    .map(|&c| state.schedule().loads()[c])
                                    .collect(),
                                members: members
                                    .iter()
                                    .map(|&i| {
                                        let (n, ref br) = pending[i];
                                        let row = state.schedule().row(OlevId(n));
                                        CommitMove {
                                            n,
                                            row: sections.iter().map(|&c| row[c]).collect(),
                                            total: state.schedule().olev_total(OlevId(n)),
                                            shares: sections
                                                .iter()
                                                .map(|&c| br.allocation.shares[c])
                                                .collect(),
                                            br_total: br.total,
                                        }
                                    })
                                    .collect(),
                                sections,
                            };
                            task_txs[g % shards]
                                .send(ShardJob::Commit(task))
                                .expect("shard worker alive");
                        }
                        for _ in 0..groups.len() {
                            match result_rx.recv().expect("shard worker alive") {
                                ShardReply::Commits(slot, v) => verdict_slots[slot] = Some(v),
                                ShardReply::Moves(..) => {
                                    unreachable!("compute reply during commit phase")
                                }
                            }
                        }
                        // Phase 4: deterministic merge, partition by
                        // partition in first-member sweep order, committing
                        // accepted moves through the sparse O(footprint)
                        // path. A mid-merge eviction invalidates the
                        // workers' frozen-state assumption (the zeroed row
                        // changes loads other partitions guarded against),
                        // so the rest of the round falls back to the
                        // serialized guard against live state.
                        let mut serial_fallback = false;
                        for (g, members) in groups.iter().enumerate() {
                            let verdicts = verdict_slots[g].take().expect("verdict collected");
                            for (k, &i) in members.iter().enumerate() {
                                let (n, ref br) = pending[i];
                                if !active[n] {
                                    // Evicted since its guard ran; its move
                                    // dies with it and the round is tainted.
                                    serial_fallback = true;
                                    continue;
                                }
                                let id = OlevId(n);
                                let change = if serial_fallback {
                                    let before = state.schedule().olev_total(id);
                                    state.loads_excluding_into(id, &mut scratch_excl);
                                    let f_old = satisfactions[n].value(before)
                                        - payment_for_schedule(
                                            cost,
                                            caps,
                                            &scratch_excl,
                                            state.schedule().row(id),
                                        );
                                    let f_new = satisfactions[n].value(br.total)
                                        - payment_for_schedule(
                                            cost,
                                            caps,
                                            &scratch_excl,
                                            &br.allocation.shares,
                                        );
                                    if f_new - f_old < -1e-12 {
                                        report.conflicts += 1;
                                        telemetry.counter("engine.parallel.conflicts", n as i64, 1);
                                        continue;
                                    }
                                    state.apply_row(
                                        id,
                                        &br.allocation.shares,
                                        satisfactions,
                                        cost,
                                        caps,
                                    );
                                    (br.total - before).abs()
                                } else {
                                    let (accepted, ch) = verdicts[k];
                                    if !accepted {
                                        report.conflicts += 1;
                                        telemetry.counter("engine.parallel.conflicts", n as i64, 1);
                                        continue;
                                    }
                                    let values: Vec<f64> = footprints[i]
                                        .iter()
                                        .map(|&c| br.allocation.shares[c])
                                        .collect();
                                    state.apply_row_sparse(
                                        id,
                                        &footprints[i],
                                        &values,
                                        satisfactions,
                                        cost,
                                        caps,
                                    );
                                    ch
                                };
                                replies[n] += 1;
                                updates += 1;
                                sweep_applied += 1;
                                sweep_max_change = sweep_max_change.max(change);
                                let snapshot = Snapshot {
                                    update: updates,
                                    congestion: state.schedule().system_congestion(caps),
                                    welfare: state.welfare(),
                                    change,
                                };
                                let key = updates as i64;
                                telemetry.gauge("engine.welfare", key, snapshot.welfare);
                                telemetry.gauge("engine.congestion", key, snapshot.congestion);
                                telemetry.gauge("engine.change", key, snapshot.change);
                                trajectory.push(snapshot);
                                if let Some(plan) = plan {
                                    for d in plan.departures_at(updates) {
                                        if active[d] {
                                            evict(
                                                d,
                                                updates,
                                                EvictionReason::Departed,
                                                state,
                                                satisfactions,
                                                cost,
                                                caps,
                                                &mut active,
                                                &mut report,
                                                &zero_row,
                                            );
                                            serial_fallback = true;
                                        }
                                    }
                                }
                                if updates >= max_updates {
                                    break 'run;
                                }
                            }
                        }
                    }
                }
                sweep += 1;
                // Convergence needs a *complete* calm sweep: every survivor
                // polled, every move applied (no drops, no conflicts),
                // nobody moved by the tolerance or more.
                if sweep_applied == sweep_polled && sweep_polled > 0 && sweep_max_change < tolerance
                {
                    converged = true;
                    telemetry.counter("engine.converged", -1, 1);
                    break;
                }
                // Endgame detection (see module docs): switch to rounds of
                // one when the sweep scale is already near the tolerance or
                // when batched sweeps stop making geometric progress.
                if sweep_max_change < best_change * 0.5 {
                    best_change = sweep_max_change;
                    stalled = 0;
                } else {
                    stalled += 1;
                }
                if current_batch > 1
                    && (sweep_max_change < tolerance * PARALLEL_ENDGAME_FACTOR
                        || stalled >= PARALLEL_STALL_SWEEPS)
                {
                    current_batch = 1;
                    telemetry.counter("engine.parallel.endgame", sweep as i64, 1);
                }
            }
        });

        Outcome {
            converged,
            updates,
            trajectory,
            degradation: report,
            end_welfare: state.welfare(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GameBuilder;
    use crate::pricing::{NonlinearPricing, PricingPolicy};
    use oes_units::Kilowatts;

    fn game(n: usize, c: usize) -> Game {
        GameBuilder::new()
            .sections(c, Kilowatts::new(60.0))
            .olevs(n, Kilowatts::new(50.0))
            .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
                15.0,
            )))
            .build()
            .expect("valid scenario")
    }

    #[test]
    fn zero_shards_or_batch_rejected() {
        let mut g = game(4, 4);
        let cfg = ParallelConfig {
            shards: 0,
            batch: 1,
            apply: ApplyMode::Serialized,
        };
        assert!(matches!(
            g.run_parallel(UpdateOrder::RoundRobin, 10, cfg),
            Err(GameError::InvalidParameter {
                name: "parallel shards",
                ..
            })
        ));
        let cfg = ParallelConfig {
            shards: 2,
            batch: 0,
            apply: ApplyMode::Serialized,
        };
        assert!(matches!(
            g.run_parallel(UpdateOrder::RoundRobin, 10, cfg),
            Err(GameError::InvalidParameter {
                name: "parallel batch",
                ..
            })
        ));
    }

    #[test]
    fn one_shard_is_bit_identical_to_serial() {
        let mut serial = game(6, 8);
        let mut parallel = game(6, 8);
        let a = serial.run(UpdateOrder::Random { seed: 7 }, 1500).unwrap();
        let b = parallel
            .run_parallel(
                UpdateOrder::Random { seed: 7 },
                1500,
                ParallelConfig::serial(),
            )
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(serial.schedule(), parallel.schedule());
    }

    #[test]
    fn same_seed_same_config_is_bit_identical() {
        let cfg = ParallelConfig::new(3).with_batch(4);
        let run = || {
            let mut g = game(9, 6);
            let out = g
                .run_parallel(UpdateOrder::Random { seed: 42 }, 3000, cfg)
                .unwrap();
            (out, g.schedule().clone())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "same-seed parallel runs must be bit-identical");
        assert_eq!(sa, sb);
        for (x, y) in a.trajectory.iter().zip(&b.trajectory) {
            assert_eq!(x.welfare.to_bits(), y.welfare.to_bits());
        }
    }

    #[test]
    fn sharded_sweeps_reach_the_serial_optimum() {
        let mut serial = game(8, 6);
        let reference = serial.run(UpdateOrder::RoundRobin, 4000).unwrap();
        assert!(reference.converged());
        for shards in [2, 4] {
            let mut g = game(8, 6);
            let out = g
                .run_parallel(
                    UpdateOrder::RoundRobin,
                    4000,
                    ParallelConfig::new(shards).with_batch(4),
                )
                .unwrap();
            assert!(out.converged(), "K={shards} did not converge");
            assert!(
                (out.final_welfare() - reference.final_welfare()).abs() < 1e-9,
                "K={shards}: {} vs {}",
                out.final_welfare(),
                reference.final_welfare()
            );
        }
    }

    #[test]
    fn parallel_welfare_ascends_monotonically() {
        // The potential-ascent guard in action: simultaneous snapshot
        // responses may conflict, but every *applied* move raises W, so the
        // trajectory cannot limit-cycle (the failure mode of unguarded
        // Jacobi sweeps).
        let mut g = game(6, 4);
        let out = g
            .run_parallel(
                UpdateOrder::RoundRobin,
                2000,
                ParallelConfig::new(2).with_batch(3),
            )
            .unwrap();
        assert!(out.converged());
        let mut last = f64::NEG_INFINITY;
        for s in &out.trajectory {
            assert!(
                s.welfare >= last - 1e-9,
                "welfare dropped at update {}: {last} -> {}",
                s.update,
                s.welfare
            );
            last = s.welfare;
        }
    }

    #[test]
    fn parallel_telemetry_namespace_is_emitted() {
        use oes_telemetry::{RingBufferRecorder, Telemetry};
        use std::sync::Arc;

        let ring = Arc::new(RingBufferRecorder::new(1 << 14));
        let telemetry = Telemetry::new(ring.clone());
        let mut g = game(6, 4);
        let out = g
            .run_parallel_with(
                UpdateOrder::RoundRobin,
                2000,
                ParallelConfig::new(2).with_batch(3),
                &telemetry,
            )
            .unwrap();
        assert!(out.converged());
        let events = ring.events();
        assert!(events.iter().any(|e| e.name == "engine.parallel.shards"));
        assert!(events.iter().any(|e| e.name == "engine.parallel.sweep"));
        let welfare_gauges = events.iter().filter(|e| e.name == "engine.welfare").count();
        assert_eq!(welfare_gauges, out.updates());
        assert_eq!(ring.counter_total("engine.converged"), 1);
    }

    #[test]
    fn departures_compose_with_parallel_sweeps() {
        let mut g = game(6, 4);
        let plan = FaultPlan::new(5).depart(2, 9).depart(5, 9);
        let out = g
            .run_parallel_faulted(
                UpdateOrder::RoundRobin,
                4000,
                ParallelConfig::new(2).with_batch(3),
                &plan,
                &Telemetry::disabled(),
            )
            .unwrap();
        assert!(out.converged());
        assert_eq!(out.degradation().evicted(), vec![2, 5]);
        assert_eq!(out.degradation().survivors(6), vec![0, 1, 3, 4]);
        // Departed rows are zeroed.
        assert_eq!(g.schedule().olev_total(OlevId(2)), 0.0);
        assert_eq!(g.schedule().olev_total(OlevId(5)), 0.0);
        // The survivors re-equilibrate to the 4-player optimum.
        let mut reference = game(4, 4);
        let r = reference.run(UpdateOrder::RoundRobin, 4000).unwrap();
        assert!(
            (out.final_welfare() - r.final_welfare()).abs() < 1e-6,
            "{} vs {}",
            out.final_welfare(),
            r.final_welfare()
        );
    }

    #[test]
    fn dropped_moves_only_delay_convergence() {
        let mut clean = game(5, 4);
        let reference = clean.run(UpdateOrder::RoundRobin, 4000).unwrap();
        let mut g = game(5, 4);
        let plan = FaultPlan::new(11).drop_probability(0.3);
        let out = g
            .run_parallel_faulted(
                UpdateOrder::RoundRobin,
                8000,
                ParallelConfig::new(2).with_batch(2),
                &plan,
                &Telemetry::disabled(),
            )
            .unwrap();
        assert!(out.converged(), "drops must not prevent convergence");
        assert!(out.degradation().drops > 0, "plan must actually drop");
        assert!(
            (out.final_welfare() - reference.final_welfare()).abs() < 1e-9,
            "{} vs {}",
            out.final_welfare(),
            reference.final_welfare()
        );
    }

    #[test]
    fn crash_point_evicts_mid_run() {
        let mut g = game(4, 4);
        let plan = FaultPlan::new(3).crash(1, 2);
        let out = g
            .run_parallel_faulted(
                UpdateOrder::RoundRobin,
                4000,
                ParallelConfig::new(2).with_batch(2),
                &plan,
                &Telemetry::disabled(),
            )
            .unwrap();
        assert!(out.converged());
        assert_eq!(out.degradation().evicted(), vec![1]);
        assert!(matches!(
            out.degradation().evictions[0].reason,
            EvictionReason::Crashed(_)
        ));
        assert_eq!(g.schedule().olev_total(OlevId(1)), 0.0);
    }

    /// `spans` disjoint corridors of `sections_per_span` sections, each
    /// populated by `n_per_span` OLEVs windowed to that corridor — the
    /// footprint structure partitioned applies exploit.
    fn windowed_game(n_per_span: usize, spans: usize, sections_per_span: usize) -> Game {
        let mut b = GameBuilder::new().sections(spans * sections_per_span, Kilowatts::new(60.0));
        for s in 0..spans {
            b = b.olevs_in(
                n_per_span,
                Kilowatts::new(50.0),
                s * sections_per_span..(s + 1) * sections_per_span,
            );
        }
        b.pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
            15.0,
        )))
        .build()
        .expect("valid windowed scenario")
    }

    #[test]
    fn partitioned_apply_reaches_the_serial_optimum() {
        let mut serial = game(8, 6);
        let reference = serial.run(UpdateOrder::RoundRobin, 4000).unwrap();
        assert!(reference.converged());
        let mut g = game(8, 6);
        let out = g
            .run_parallel(
                UpdateOrder::RoundRobin,
                4000,
                ParallelConfig::new(2)
                    .with_batch(4)
                    .with_apply(ApplyMode::Partitioned),
            )
            .unwrap();
        assert!(out.converged());
        assert!(
            (out.final_welfare() - reference.final_welfare()).abs() < 1e-9,
            "{} vs {}",
            out.final_welfare(),
            reference.final_welfare()
        );
    }

    #[test]
    fn disjoint_windows_split_rounds_into_many_partitions() {
        use oes_telemetry::{RingBufferRecorder, Sample, Telemetry};
        use std::sync::Arc;

        let ring = Arc::new(RingBufferRecorder::new(1 << 15));
        let telemetry = Telemetry::new(ring.clone());
        let mut g = windowed_game(2, 4, 3);
        let out = g
            .run_parallel_with(
                UpdateOrder::RoundRobin,
                6000,
                ParallelConfig::new(2)
                    .with_batch(8)
                    .with_apply(ApplyMode::Partitioned),
                &telemetry,
            )
            .unwrap();
        assert!(out.converged());
        // A full-batch round holds OLEVs from all four disjoint corridors,
        // so at least one partitioned round must split into several groups.
        let max_groups = ring
            .events()
            .iter()
            .filter(|e| e.name == "engine.parallel.partitions")
            .map(|e| match e.sample {
                Sample::Counter { delta } => delta,
                _ => 0,
            })
            .max()
            .expect("partitioned rounds emit the partitions counter");
        assert!(
            max_groups >= 2,
            "expected multi-group rounds, got {max_groups}"
        );
        // Rows stay inside their window.
        let sections = 4 * 3;
        for n in 0..8 {
            let (w0, w1) = g.windows()[n];
            let row = g.schedule().row(OlevId(n));
            for (c, &v) in row.iter().enumerate().take(sections) {
                if c < w0 || c >= w1 {
                    assert_eq!(v, 0.0, "olev {n} leaked load into section {c}");
                }
            }
        }
    }

    #[test]
    fn windowed_partitioned_welfare_matches_windowed_serial() {
        let mut serial = windowed_game(2, 3, 4);
        let reference = serial.run(UpdateOrder::RoundRobin, 6000).unwrap();
        assert!(reference.converged());
        let mut g = windowed_game(2, 3, 4);
        let out = g
            .run_parallel(
                UpdateOrder::RoundRobin,
                6000,
                ParallelConfig::new(3)
                    .with_batch(6)
                    .with_apply(ApplyMode::Partitioned),
            )
            .unwrap();
        assert!(out.converged());
        assert!(
            (out.final_welfare() - reference.final_welfare()).abs() < 1e-9,
            "{} vs {}",
            out.final_welfare(),
            reference.final_welfare()
        );
    }

    #[test]
    fn zero_budget_parallel_run_reports_current_state() {
        let mut g = game(4, 4);
        let out = g
            .run_parallel(UpdateOrder::RoundRobin, 0, ParallelConfig::new(2))
            .unwrap();
        assert_eq!(out.updates(), 0);
        assert!(!out.converged());
        assert_eq!(out.final_welfare().to_bits(), g.welfare().to_bits());
    }
}
