//! The paper's core contribution: a game-theory-based nonlinear pricing
//! policy for opportunistic energy sharing between the smart grid and OLEVs.
//!
//! The smart grid owns `C` road-embedded charging sections; `N` OLEVs want
//! power. Each OLEV `n` has a private, strictly concave
//! [satisfaction](satisfaction::Satisfaction) `U_n` and a capacity bound
//! `P_OLEV` (Eq. 2). Each section has a strictly convex
//! [charging cost](pricing) `Z = V + A` (pricing plus overload penalty). The
//! grid wants to maximize the social welfare
//!
//! ```text
//! W(p) = Σ_n U_n(p_n) − Σ_c Z(P_c)          (Eq. 7)
//! ```
//!
//! without learning any `U_n`. The mechanism (Section IV):
//!
//! 1. Given the others' schedules, the grid serves a request `p_n` with the
//!    cost-minimizing [water-filling schedule](mod@waterfill) of Lemma IV.1
//!    (`p_{n,c} = [λ* − P_{-n,c}]⁺`, λ* by bisection) and bills the
//!    *incremental* cost ([`payment`], Eqs. 8–16).
//! 2. Each OLEV plays its [best response](mod@best_response) (Lemma IV.3) to the
//!    posted payment function.
//! 3. The [asynchronous engine](engine) iterates 1–2; because payments equal
//!    increments of `W`, the game is an *exact potential game*
//!    ([`potential`]) and the dynamics converge to the welfare maximizer
//!    (Theorem IV.1). The [centralized solver](centralized) provides an
//!    independent ground truth, [`distributed`] runs the same protocol
//!    across real threads exchanging V2I-style messages, and [`parallel`]
//!    exploits the same bounded-staleness license in-process: seeded,
//!    sharded best-response sweeps that stay bit-deterministic at any
//!    thread count.
//!
//! The [linear pricing baseline](pricing::LinearPricing) of Section V is
//! included: its cost is not strictly convex, the cost-minimizing schedule
//! degenerates, and the grid falls back to [greedy
//! filling](waterfill::greedy_fill) — which is what breaks load balancing in
//! the paper's Figs. 5(c)/6(c).
//!
//! # Examples
//!
//! ```
//! use oes_game::{GameBuilder, NonlinearPricing, PricingPolicy, UpdateOrder};
//! use oes_units::Kilowatts;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut game = GameBuilder::new()
//!     .sections(10, Kilowatts::new(60.0))
//!     .olevs(5, Kilowatts::new(40.0))
//!     .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)))
//!     .build()?;
//! let outcome = game.run(UpdateOrder::RoundRobin, 500)?;
//! assert!(outcome.converged());
//! // The equilibrium schedule is load-balanced across sections.
//! let loads = game.section_loads();
//! let spread = loads.iter().fold(0.0f64, |m, &l| m.max(l)) -
//!     loads.iter().fold(f64::INFINITY, |m, &l| m.min(l));
//! assert!(spread < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod best_response;
pub mod builder;
pub mod centralized;
pub mod distributed;
pub mod dynamics;
pub mod engine;
pub mod error;
pub mod fairness;
pub mod faults;
pub mod meanfield;
pub mod parallel;
pub mod payment;
pub mod potential;
pub mod pricing;
pub mod revenue;
pub mod routing;
pub mod satisfaction;
pub mod schedule;
pub mod session;
pub mod state;
pub mod waterfill;

pub use analysis::{compare_regimes, ComparisonScenario, RegimeOutcome, WelfareComparison};
pub use best_response::best_response;
pub use builder::{GameBuilder, WarmStart};
pub use centralized::{solve_centralized, CentralizedSolution};
pub use distributed::{DistributedGame, StaleDistributedGame};
pub use dynamics::{uniform_fleet, RoundOutcome, SocCoupledGame};
pub use engine::{Game, Outcome, Snapshot, UpdateOrder};
pub use error::GameError;
pub use fairness::{fairness_report, fairness_report_with, jain_index, FairnessReport};
pub use faults::{DegradationReport, Eviction, EvictionReason, FaultPlan, LinkVerdict, LossyLink};
pub use meanfield::{solve_mean_field, solve_mean_field_with, MeanFieldSolution, MeanFieldType};
pub use parallel::{ApplyMode, ParallelConfig};
pub use payment::{payment_for_schedule, quote, PaymentQuote, Scheduler};
pub use pricing::{
    CostPolicy, LinearPricing, NonlinearPricing, OverloadPenalty, PricingPolicy, SectionCost,
};
pub use revenue::{revenue_report, RevenueReport};
pub use routing::{RouteChoice, RouteOption, RoutingEconomics, RoutingEquilibrium};
pub use satisfaction::{LogSatisfaction, Satisfaction, SqrtSatisfaction};
pub use schedule::PowerSchedule;
pub use session::{
    OutboundOffer, ReplyDisposition, SessionConfig, SessionCoordinator, MAX_STRIKES,
};
pub use state::ScheduleState;
pub use waterfill::{greedy_fill, water_level, waterfill, Allocation};
