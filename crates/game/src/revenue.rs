//! Grid-side revenue accounting for the pricing mechanism.
//!
//! Each OLEV pays the *increment* its schedule adds to the charging cost
//! (Eq. 9). Because `Z` is convex, the sum of individual increments weakly
//! exceeds the joint increment — every OLEV is charged "the top slice" of
//! the cost curve — so the mechanism is **revenue adequate**: collected
//! payments always cover the grid's actual charging cost, with the surplus
//! being the congestion rent the nonlinear policy was designed to extract
//! (the α "profit" knob of Section V.A). This module computes those
//! quantities and the tests pin the inequality down.

use oes_units::OlevId;

use crate::engine::Game;
use crate::payment::payment_for_schedule;

/// The grid's books at a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevenueReport {
    /// Total collected payments `Σ_n ξ_n` ($ per settlement round).
    pub collected: f64,
    /// The grid's actual incremental cost `Σ_c [Z(P_c) − Z(0)]`.
    pub incurred_cost: f64,
    /// `collected − incurred_cost`: the congestion rent.
    pub surplus: f64,
    /// `collected / incurred_cost` (∞-safe: 1.0 when both are zero).
    pub markup: f64,
}

/// Computes the revenue report at the game's current schedule.
#[must_use]
pub fn revenue_report(game: &Game) -> RevenueReport {
    let schedule = game.schedule();
    // One scratch buffer for every per-OLEV `P_{-n,c}` (cached O(C) each).
    let mut loads_excl = Vec::with_capacity(game.section_count());
    let mut collected = 0.0;
    for n in 0..game.olev_count() {
        let id = OlevId(n);
        schedule.loads_excluding_into(id, &mut loads_excl);
        collected += payment_for_schedule(game.cost(), game.caps(), &loads_excl, schedule.row(id));
    }
    let incurred_cost: f64 = schedule
        .loads()
        .iter()
        .zip(game.caps())
        .map(|(&load, &cap)| game.cost().z(load, cap) - game.cost().z(0.0, cap))
        .sum();
    let surplus = collected - incurred_cost;
    let markup = if incurred_cost > 0.0 {
        collected / incurred_cost
    } else {
        1.0
    };
    RevenueReport {
        collected,
        incurred_cost,
        surplus,
        markup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GameBuilder;
    use crate::engine::UpdateOrder;
    use crate::pricing::{LinearPricing, NonlinearPricing, PricingPolicy};
    use oes_units::Kilowatts;

    fn converged(policy: PricingPolicy, weight: f64) -> Game {
        let mut g = GameBuilder::new()
            .sections(15, Kilowatts::new(30.0))
            .olevs_weighted(10, Kilowatts::new(50.0), weight)
            .pricing(policy)
            .build()
            .unwrap();
        g.run(UpdateOrder::RoundRobin, 20_000).unwrap();
        g
    }

    #[test]
    fn nonlinear_mechanism_is_revenue_adequate() {
        for weight in [0.3, 1.0, 3.0] {
            let g = converged(
                PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
                weight,
            );
            let r = revenue_report(&g);
            assert!(
                r.surplus >= -1e-9,
                "weight {weight}: payments {:.6} below cost {:.6}",
                r.collected,
                r.incurred_cost
            );
            assert!(r.markup >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn linear_mechanism_is_exactly_break_even_below_the_knee() {
        // With a linear Z, increments are exact: no congestion rent exists.
        let g = converged(
            PricingPolicy::Linear(LinearPricing::paper_default(15.0)),
            0.3,
        );
        let r = revenue_report(&g);
        assert!(r.surplus.abs() < 1e-9, "linear surplus {:.3e}", r.surplus);
        assert!((r.markup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn congestion_rent_grows_with_demand() {
        let lo = revenue_report(&converged(
            PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
            0.3,
        ));
        let hi = revenue_report(&converged(
            PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
            3.0,
        ));
        assert!(hi.surplus > lo.surplus, "{} !> {}", hi.surplus, lo.surplus);
    }

    #[test]
    fn empty_schedule_is_all_zero() {
        let g = GameBuilder::new()
            .sections(5, Kilowatts::new(30.0))
            .olevs(3, Kilowatts::new(50.0))
            .build()
            .unwrap();
        let r = revenue_report(&g);
        assert_eq!(r.collected, 0.0);
        assert_eq!(r.incurred_cost, 0.0);
        assert_eq!(r.surplus, 0.0);
        assert_eq!(r.markup, 1.0);
    }
}
