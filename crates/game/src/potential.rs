//! Social welfare and the exact-potential property.
//!
//! The incremental payment ξ (Eq. 9) aligns private utilities with the social
//! welfare: for any unilateral deviation of one OLEV,
//! `ΔF_n = ΔW` exactly — the game is an *exact potential game* with potential
//! `W`. That identity is the engine behind Theorem IV.1: best-response
//! dynamics ascend `W`, which is strictly concave on a compact set, so they
//! converge to its unique maximizer. [`potential_discrepancy`] measures the
//! identity numerically and is property-tested.
//!
//! [`social_welfare`] recomputes Eq. 7 from the schedule on every call (its
//! load and total reads are O(1) from the schedule's caches, so the recompute
//! is O(N + C)); the engines snapshot welfare through the incrementally
//! maintained [`crate::state::ScheduleState`] instead, and this function is
//! the exact oracle those cached sums are tested against. [`olev_utility`]
//! likewise went from an O(N·C) sweep to O(C) via the cached
//! [`PowerSchedule::loads_excluding`].

use oes_units::OlevId;

use crate::payment::payment_for_schedule;
use crate::pricing::SectionCost;
use crate::satisfaction::Satisfaction;
use crate::schedule::PowerSchedule;

/// Eq. 7: `W(p) = Σ_n U_n(p_n) − Σ_c [Z(P_c) − Z(0)]`.
///
/// The charging cost enters as the *increment over idle* so that
/// `W(0) = 0`: the nonlinear `V` has a positive constant offset `V(0)`
/// (the grid's standing margin) that cancels out of every payment and every
/// best response, and subtracting it keeps the welfare axis anchored at zero
/// exactly as the paper's Fig. 5(b)/6(b) plots are. The shift is constant in
/// `p`, so the exact-potential identity is untouched.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
#[must_use]
pub fn social_welfare(
    satisfactions: &[Box<dyn Satisfaction>],
    cost: &SectionCost,
    caps: &[f64],
    schedule: &PowerSchedule,
) -> f64 {
    assert_eq!(
        satisfactions.len(),
        schedule.olev_count(),
        "satisfaction count mismatch"
    );
    assert_eq!(
        caps.len(),
        schedule.section_count(),
        "capacity count mismatch"
    );
    let satisfaction: f64 = satisfactions
        .iter()
        .enumerate()
        .map(|(n, s)| s.value(schedule.olev_total(OlevId(n))))
        .sum();
    let charging_cost: f64 = schedule
        .section_loads()
        .iter()
        .zip(caps)
        .map(|(&load, &cap)| cost.z(load, cap) - cost.z(0.0, cap))
        .sum();
    satisfaction - charging_cost
}

/// Eq. 18: `F_n(p_{-n}, p_n) = U_n(p_n) − ξ_n(p_{-n}, p_n)`.
#[must_use]
pub fn olev_utility(
    n: OlevId,
    satisfaction: &dyn Satisfaction,
    cost: &SectionCost,
    caps: &[f64],
    schedule: &PowerSchedule,
) -> f64 {
    let loads_excl = schedule.loads_excluding(n);
    let shares = schedule.row(n);
    satisfaction.value(schedule.olev_total(n))
        - payment_for_schedule(cost, caps, &loads_excl, shares)
}

/// Measures `|ΔF_n − ΔW|` for replacing OLEV `n`'s row by `new_row` while
/// everyone else stays put. Exactly zero (up to float noise) for every
/// schedule and deviation — the exact-potential identity.
///
/// # Panics
///
/// Panics if `new_row` has the wrong length.
#[must_use]
pub fn potential_discrepancy(
    n: OlevId,
    satisfactions: &[Box<dyn Satisfaction>],
    cost: &SectionCost,
    caps: &[f64],
    schedule: &PowerSchedule,
    new_row: &[f64],
) -> f64 {
    let w_before = social_welfare(satisfactions, cost, caps, schedule);
    let f_before = olev_utility(n, satisfactions[n.index()].as_ref(), cost, caps, schedule);
    let mut deviated = schedule.clone();
    deviated.set_row(n, new_row);
    let w_after = social_welfare(satisfactions, cost, caps, &deviated);
    let f_after = olev_utility(n, satisfactions[n.index()].as_ref(), cost, caps, &deviated);
    ((w_after - w_before) - (f_after - f_before)).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::{NonlinearPricing, OverloadPenalty, PricingPolicy};
    use crate::satisfaction::LogSatisfaction;

    fn cost() -> SectionCost {
        SectionCost::new(
            PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
            OverloadPenalty::new(0.15),
            0.9,
        )
    }

    fn sats(n: usize) -> Vec<Box<dyn Satisfaction>> {
        (0..n)
            .map(|i| Box::new(LogSatisfaction::new(1.0 + i as f64 * 0.5)) as Box<dyn Satisfaction>)
            .collect()
    }

    #[test]
    fn welfare_of_zero_schedule_is_zero() {
        let c = cost();
        let caps = [60.0; 3];
        let s = PowerSchedule::zeros(2, 3);
        assert!(social_welfare(&sats(2), &c, &caps, &s).abs() < 1e-12);
    }

    #[test]
    fn welfare_rises_when_cheap_power_is_taken() {
        let c = cost();
        let caps = [60.0; 3];
        let mut s = PowerSchedule::zeros(2, 3);
        let w0 = social_welfare(&sats(2), &c, &caps, &s);
        s.set_row(OlevId(0), &[5.0, 5.0, 5.0]);
        let w1 = social_welfare(&sats(2), &c, &caps, &s);
        assert!(w1 > w0, "taking cheap power must raise welfare");
    }

    #[test]
    fn exact_potential_identity_holds() {
        let c = cost();
        let caps = [60.0, 45.0, 70.0];
        let ss = sats(3);
        let mut s = PowerSchedule::zeros(3, 3);
        s.set_row(OlevId(0), &[1.0, 7.0, 2.0]);
        s.set_row(OlevId(1), &[0.0, 3.0, 9.0]);
        s.set_row(OlevId(2), &[4.0, 4.0, 4.0]);
        for n in 0..3 {
            let d = potential_discrepancy(OlevId(n), &ss, &c, &caps, &s, &[2.5, 0.0, 6.0]);
            assert!(d < 1e-9, "ΔF ≠ ΔW for OLEV {n}: {d}");
        }
    }

    #[test]
    fn utility_of_idle_olev_is_zero() {
        // Unbiasedness again, through the F_n lens.
        let c = cost();
        let caps = [60.0; 2];
        let ss = sats(2);
        let mut s = PowerSchedule::zeros(2, 2);
        s.set_row(OlevId(1), &[10.0, 20.0]);
        let f0 = olev_utility(OlevId(0), ss[0].as_ref(), &c, &caps, &s);
        assert_eq!(f0, 0.0);
    }
}
