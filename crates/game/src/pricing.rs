//! Charging-cost policies: the nonlinear pricing policy (the contribution),
//! the linear baseline, and the overload penalty.
//!
//! Section V.A of the paper instantiates the per-section power charging cost
//! as `V(x) = β (α + x/X̂)²` with `α = 0.875` and `β` set to the NYISO LBMP,
//! against a linear baseline `V(x) = β x`. The overload cost `A` penalizes
//! load beyond the safety knee `η·P_line` (Eq. 4); `Z = V + A` is the full
//! charging cost of Eq. 6.
//!
//! This module expresses `V` in *quantity-proportional* form so that the unit
//! price (`$ per MWh`) of the linear baseline equals `β` exactly, as in
//! Fig. 5(a): `V(x) = β̃ · (P/2) · (α + x/P)²` with `P` the section's line
//! capacity and `β̃ = β/1000` ($ per kWh when β is an LBMP in $/MWh). Its
//! marginal is `V'(x) = β̃ (α + x/P)` — a unit price that grows linearly with
//! the congestion degree `x/P`, precisely the disincentive the paper
//! designs.

/// A per-section power charging cost `V`.
pub trait CostPolicy {
    /// `V(x)` for section load `x ≥ 0` (kW), given the section's capacity
    /// scale `P_line` (kW) that normalizes the congestion degree.
    fn cost(&self, x: f64, scale: f64) -> f64;

    /// `V'(x)`, the marginal cost.
    fn marginal(&self, x: f64, scale: f64) -> f64;

    /// Whether `V` is strictly convex (required by Lemma IV.1's
    /// water-filling schedule; the linear baseline is not).
    fn is_strictly_convex(&self) -> bool;

    /// A short name for reports.
    fn name(&self) -> &str;
}

/// The paper's nonlinear pricing policy, `V(x) = β̃ (P/2) (α + x/P)²`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NonlinearPricing {
    /// Profit-margin shape parameter (paper: 0.875).
    pub alpha: f64,
    /// Price scale in $ per kWh (an LBMP in $/MWh divided by 1000).
    pub beta: f64,
}

impl NonlinearPricing {
    /// The paper's instantiation: `α = 0.875`, `β` equal to the LBMP.
    ///
    /// # Panics
    ///
    /// Panics if `lbmp_dollars_per_mwh` is not strictly positive and finite.
    #[must_use]
    pub fn paper_default(lbmp_dollars_per_mwh: f64) -> Self {
        assert!(
            lbmp_dollars_per_mwh > 0.0 && lbmp_dollars_per_mwh.is_finite(),
            "LBMP must be positive"
        );
        Self {
            alpha: 0.875,
            beta: lbmp_dollars_per_mwh / 1000.0,
        }
    }
}

impl CostPolicy for NonlinearPricing {
    fn cost(&self, x: f64, scale: f64) -> f64 {
        let r = self.alpha + x / scale;
        self.beta * (scale / 2.0) * r * r
    }

    fn marginal(&self, x: f64, scale: f64) -> f64 {
        self.beta * (self.alpha + x / scale)
    }

    fn is_strictly_convex(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "nonlinear"
    }
}

/// The linear baseline of Section V: `V(x) = β̃ x` — a congestion-blind flat
/// unit price.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinearPricing {
    /// Price scale in $ per kWh (an LBMP in $/MWh divided by 1000).
    pub beta: f64,
}

impl LinearPricing {
    /// The baseline with `β` equal to the LBMP.
    ///
    /// # Panics
    ///
    /// Panics if `lbmp_dollars_per_mwh` is not strictly positive and finite.
    #[must_use]
    pub fn paper_default(lbmp_dollars_per_mwh: f64) -> Self {
        assert!(
            lbmp_dollars_per_mwh > 0.0 && lbmp_dollars_per_mwh.is_finite(),
            "LBMP must be positive"
        );
        Self {
            beta: lbmp_dollars_per_mwh / 1000.0,
        }
    }
}

impl CostPolicy for LinearPricing {
    fn cost(&self, x: f64, _scale: f64) -> f64 {
        self.beta * x
    }

    fn marginal(&self, _x: f64, _scale: f64) -> f64 {
        self.beta
    }

    fn is_strictly_convex(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "linear"
    }
}

/// Either pricing policy, as a configuration value.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PricingPolicy {
    /// The paper's nonlinear policy.
    Nonlinear(NonlinearPricing),
    /// The linear baseline.
    Linear(LinearPricing),
}

impl CostPolicy for PricingPolicy {
    fn cost(&self, x: f64, scale: f64) -> f64 {
        match self {
            Self::Nonlinear(p) => p.cost(x, scale),
            Self::Linear(p) => p.cost(x, scale),
        }
    }

    fn marginal(&self, x: f64, scale: f64) -> f64 {
        match self {
            Self::Nonlinear(p) => p.marginal(x, scale),
            Self::Linear(p) => p.marginal(x, scale),
        }
    }

    fn is_strictly_convex(&self) -> bool {
        match self {
            Self::Nonlinear(p) => p.is_strictly_convex(),
            Self::Linear(p) => p.is_strictly_convex(),
        }
    }

    fn name(&self) -> &str {
        match self {
            Self::Nonlinear(p) => p.name(),
            Self::Linear(p) => p.name(),
        }
    }
}

/// The overload cost `A(y) = κ · ([y]⁺)²` applied beyond the knee (Eq. 6).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OverloadPenalty {
    /// Penalty stiffness κ ($ per kWh per kW of overload).
    pub kappa: f64,
}

impl OverloadPenalty {
    /// Creates a penalty.
    ///
    /// # Panics
    ///
    /// Panics if `kappa` is negative or non-finite.
    #[must_use]
    pub fn new(kappa: f64) -> Self {
        assert!(
            kappa >= 0.0 && kappa.is_finite(),
            "kappa must be non-negative"
        );
        Self { kappa }
    }

    /// `A(x − knee)`.
    #[must_use]
    pub fn cost(&self, x: f64, knee: f64) -> f64 {
        let y = (x - knee).max(0.0);
        self.kappa * y * y
    }

    /// `A'(x − knee)`.
    #[must_use]
    pub fn marginal(&self, x: f64, knee: f64) -> f64 {
        2.0 * self.kappa * (x - knee).max(0.0)
    }
}

/// The full per-section charging cost `Z(x) = V(x) + A(x − η·P_line)`
/// (Eq. 6), bound to a section's capacity.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SectionCost {
    /// The pricing policy `V`.
    pub policy: PricingPolicy,
    /// The overload penalty `A`.
    pub overload: OverloadPenalty,
    /// Safety factor `η ∈ (0, 1]` of Eq. 4.
    pub eta: f64,
}

impl SectionCost {
    /// Creates the combined cost.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is outside `(0, 1]`.
    #[must_use]
    pub fn new(policy: PricingPolicy, overload: OverloadPenalty, eta: f64) -> Self {
        assert!(eta > 0.0 && eta <= 1.0, "eta must be in (0, 1]");
        Self {
            policy,
            overload,
            eta,
        }
    }

    /// The knee `η·P_line` for a section of capacity `cap` (kW).
    #[must_use]
    pub fn knee(&self, cap: f64) -> f64 {
        self.eta * cap
    }

    /// `Z(x)` for a section of capacity `cap`.
    ///
    /// The pricing term normalizes by the full line capacity (`x/P_line` is
    /// the congestion degree the paper prices on); the overload term kicks
    /// in at the safety knee `η·P_line`.
    #[must_use]
    pub fn z(&self, x: f64, cap: f64) -> f64 {
        self.policy.cost(x, cap) + self.overload.cost(x, self.knee(cap))
    }

    /// `Z'(x)` for a section of capacity `cap`.
    #[must_use]
    pub fn z_prime(&self, x: f64, cap: f64) -> f64 {
        self.policy.marginal(x, cap) + self.overload.marginal(x, self.knee(cap))
    }

    /// Whether `Z` supports the water-filling schedule (strictly convex `V`).
    #[must_use]
    pub fn supports_waterfilling(&self) -> bool {
        self.policy.is_strictly_convex()
    }

    /// The closed-form inverse of `Z'` where it exists: the load `x ≥ 0` with
    /// `Z'(x) = μ` for a section of capacity `cap`.
    ///
    /// `Z'` is piecewise linear for the nonlinear policy plus quadratic
    /// overload, so the inverse is exact; the linear baseline has a flat
    /// `Z'` below the knee and returns `None` (the degeneracy that rules out
    /// water-filling).
    #[must_use]
    pub fn z_prime_inverse(&self, mu: f64, cap: f64) -> Option<f64> {
        let knee = self.knee(cap);
        match &self.policy {
            PricingPolicy::Nonlinear(p) => {
                // Below the knee only V is active: β̃(α + x/cap) = μ.
                let x_below = cap * (mu / p.beta - p.alpha);
                if x_below <= knee {
                    return Some(x_below.max(0.0));
                }
                // Past the knee: β̃(α + x/cap) + 2κ(x − knee) = μ.
                let kappa = self.overload.kappa;
                let x = (mu - p.beta * p.alpha + 2.0 * kappa * knee) / (p.beta / cap + 2.0 * kappa);
                Some(x.max(0.0))
            }
            PricingPolicy::Linear(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nl() -> NonlinearPricing {
        NonlinearPricing::paper_default(15.0)
    }

    #[test]
    fn nonlinear_marginal_is_derivative_of_cost() {
        let p = nl();
        let h = 1e-6;
        for x in [0.0, 10.0, 54.0, 80.0] {
            let fd = (p.cost(x + h, 54.0) - p.cost((x - h).max(0.0), 54.0))
                / (if x == 0.0 { h } else { 2.0 * h });
            assert!((p.marginal(x, 54.0) - fd).abs() < 1e-6, "at {x}");
        }
    }

    #[test]
    fn nonlinear_unit_price_rises_with_congestion() {
        let p = nl();
        let knee = 54.0;
        let at = |frac: f64| p.marginal(frac * knee, knee) * 1000.0;
        // β(α + x̂): ≈ 14.6 $/MWh at 10% congestion, ≈ 26.6 at 90%.
        assert!((at(0.1) - 15.0 * 0.975).abs() < 1e-9);
        assert!((at(0.9) - 15.0 * 1.775).abs() < 1e-9);
        assert!(at(0.9) > at(0.5) && at(0.5) > at(0.1));
    }

    #[test]
    fn linear_unit_price_is_flat_at_beta() {
        let p = LinearPricing::paper_default(15.0);
        for x in [1.0, 20.0, 54.0] {
            assert!((p.marginal(x, 54.0) * 1000.0 - 15.0).abs() < 1e-12);
        }
        assert!(!p.is_strictly_convex());
    }

    #[test]
    fn nonlinear_crosses_linear_early() {
        // β(α + x̂) = β at x̂ = 1 − α = 0.125: below that congestion the
        // nonlinear policy is cheaper, above it costlier — the crossover of
        // Fig. 5(a).
        let n = nl();
        let l = LinearPricing::paper_default(15.0);
        let knee = 54.0;
        assert!(n.marginal(0.05 * knee, knee) < l.marginal(0.05 * knee, knee));
        assert!(n.marginal(0.30 * knee, knee) > l.marginal(0.30 * knee, knee));
    }

    #[test]
    fn overload_only_beyond_knee() {
        let a = OverloadPenalty::new(0.5);
        assert_eq!(a.cost(40.0, 54.0), 0.0);
        assert_eq!(a.marginal(40.0, 54.0), 0.0);
        assert!(a.cost(60.0, 54.0) > 0.0);
        assert!((a.marginal(60.0, 54.0) - 2.0 * 0.5 * 6.0).abs() < 1e-12);
    }

    #[test]
    fn section_cost_combines_and_is_convex() {
        let z = SectionCost::new(
            PricingPolicy::Nonlinear(nl()),
            OverloadPenalty::new(0.15),
            0.9,
        );
        let cap = 60.0;
        assert_eq!(z.knee(cap), 54.0);
        // Z' strictly increasing over the whole range (incl. past the knee).
        let mut last = z.z_prime(0.0, cap);
        for i in 1..200 {
            let x = i as f64 * 0.5;
            let m = z.z_prime(x, cap);
            assert!(m > last, "Z' not increasing at {x}");
            last = m;
        }
        assert!(z.supports_waterfilling());
    }

    #[test]
    fn linear_section_cost_rejects_waterfilling() {
        let z = SectionCost::new(
            PricingPolicy::Linear(LinearPricing::paper_default(15.0)),
            OverloadPenalty::new(0.15),
            0.9,
        );
        assert!(!z.supports_waterfilling());
    }

    #[test]
    fn cost_offsets_cancel_in_increments() {
        // V(0) > 0 for the nonlinear policy, but payments are increments of
        // Z, so the offset never reaches an OLEV.
        let z = SectionCost::new(
            PricingPolicy::Nonlinear(nl()),
            OverloadPenalty::new(0.1),
            0.9,
        );
        let increment = z.z(10.0, 60.0) - z.z(10.0, 60.0);
        assert_eq!(increment, 0.0);
        assert!(z.z(0.0, 60.0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "eta must be in")]
    fn eta_out_of_range_panics() {
        let _ = SectionCost::new(
            PricingPolicy::Nonlinear(nl()),
            OverloadPenalty::new(0.1),
            1.5,
        );
    }

    #[test]
    #[should_panic(expected = "LBMP must be positive")]
    fn negative_lbmp_panics() {
        let _ = NonlinearPricing::paper_default(-3.0);
    }
}
