//! The power payment function ξ/Ψ (Eqs. 8–16) and the grid's scheduler
//! choice.
//!
//! An OLEV is billed the *increment* its schedule adds to the total charging
//! cost: `ξ_n(p_{-n}, p_n) = Σ_c [Z(P_{-n,c} + p_{n,c}) − Z(P_{-n,c})]`
//! (Eq. 9). It is unbiased — requesting nothing costs nothing — and it is
//! exactly what makes the game an exact potential game (see
//! [`crate::potential`]). `Ψ_n(p_n)` (Eq. 16) is ξ evaluated at the grid's
//! cost-minimizing schedule for the request `p_n`.

use crate::pricing::SectionCost;
use crate::waterfill::{greedy_fill, marginal_waterfill, Allocation};

/// How the grid schedules a total request across sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Scheduler {
    /// Lemma IV.1 water-filling (requires strictly convex `Z`).
    WaterFilling,
    /// Sequential greedy filling (the linear baseline's behavior).
    Greedy,
}

impl Scheduler {
    /// The scheduler a cost policy admits: water-filling when `Z` is strictly
    /// convex, greedy otherwise.
    #[must_use]
    pub fn for_cost(cost: &SectionCost) -> Self {
        if cost.supports_waterfilling() {
            Self::WaterFilling
        } else {
            Self::Greedy
        }
    }

    /// Allocates `total` across sections given the other OLEVs' loads.
    #[must_use]
    pub fn allocate(
        &self,
        cost: &SectionCost,
        caps: &[f64],
        loads_excl: &[f64],
        total: f64,
    ) -> Allocation {
        match self {
            Self::WaterFilling => marginal_waterfill(cost, caps, loads_excl, total),
            Self::Greedy => greedy_fill(cost, caps, loads_excl, total),
        }
    }
}

/// Eq. 9: the payment for a concrete schedule row.
///
/// # Panics
///
/// Panics if the slice lengths mismatch.
#[must_use]
pub fn payment_for_schedule(
    cost: &SectionCost,
    caps: &[f64],
    loads_excl: &[f64],
    shares: &[f64],
) -> f64 {
    assert!(
        caps.len() == loads_excl.len() && caps.len() == shares.len(),
        "caps/loads/shares length mismatch"
    );
    (0..caps.len())
        .map(|c| cost.z(loads_excl[c] + shares[c], caps[c]) - cost.z(loads_excl[c], caps[c]))
        .sum()
}

/// A priced offer from the grid: `Ψ_n(p_n)` with the schedule behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct PaymentQuote {
    /// The schedule `p̂_n(p_n)` the grid would run (Eq. 11).
    pub allocation: Allocation,
    /// The payment `Ψ_n(p_n)` (Eq. 16).
    pub payment: f64,
}

/// Eq. 16: quotes the payment for a total request `p_n`, scheduling it
/// cost-minimally first.
#[must_use]
pub fn quote(
    cost: &SectionCost,
    caps: &[f64],
    loads_excl: &[f64],
    scheduler: Scheduler,
    total: f64,
) -> PaymentQuote {
    let allocation = scheduler.allocate(cost, caps, loads_excl, total);
    let payment = payment_for_schedule(cost, caps, loads_excl, &allocation.shares);
    PaymentQuote {
        allocation,
        payment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::{LinearPricing, NonlinearPricing, OverloadPenalty, PricingPolicy};

    fn nl_cost() -> SectionCost {
        SectionCost::new(
            PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
            OverloadPenalty::new(0.15),
            0.9,
        )
    }

    #[test]
    fn zero_request_costs_nothing() {
        // Eq. 9's unbiasedness: ξ_n(p_{-n}, 0) = 0.
        let cost = nl_cost();
        let caps = [60.0; 3];
        let loads = [10.0, 20.0, 5.0];
        let q = quote(&cost, &caps, &loads, Scheduler::WaterFilling, 0.0);
        assert_eq!(q.payment, 0.0);
        assert_eq!(q.allocation.total(), 0.0);
    }

    #[test]
    fn payment_is_increment_of_total_cost() {
        let cost = nl_cost();
        let caps = [60.0; 2];
        let loads = [10.0, 30.0];
        let shares = [8.0, 2.0];
        let xi = payment_for_schedule(&cost, &caps, &loads, &shares);
        let before: f64 = (0..2).map(|c| cost.z(loads[c], caps[c])).sum();
        let after: f64 = (0..2).map(|c| cost.z(loads[c] + shares[c], caps[c])).sum();
        assert!((xi - (after - before)).abs() < 1e-12);
        assert!(xi > 0.0);
    }

    #[test]
    fn waterfilled_quote_is_cheapest() {
        // Lemma IV.2: the grid's schedule minimizes the OLEV's payment among
        // all feasible splits of the same total.
        let cost = nl_cost();
        let caps = [60.0; 3];
        let loads = [0.0, 25.0, 50.0];
        let total = 12.0;
        let q = quote(&cost, &caps, &loads, Scheduler::WaterFilling, total);
        // Compare against a few arbitrary same-total splits.
        for split in [
            [12.0, 0.0, 0.0],
            [0.0, 0.0, 12.0],
            [4.0, 4.0, 4.0],
            [6.0, 6.0, 0.0],
        ] {
            let alt = payment_for_schedule(&cost, &caps, &loads, &split);
            assert!(
                q.payment <= alt + 1e-9,
                "waterfill {} beaten by {split:?} at {alt}",
                q.payment
            );
        }
    }

    #[test]
    fn quote_payment_increases_with_request() {
        let cost = nl_cost();
        let caps = [60.0; 3];
        let loads = [5.0, 10.0, 15.0];
        let mut last = 0.0;
        for i in 1..10 {
            let q = quote(
                &cost,
                &caps,
                &loads,
                Scheduler::WaterFilling,
                i as f64 * 3.0,
            );
            assert!(q.payment > last);
            last = q.payment;
        }
    }

    #[test]
    fn scheduler_selection_follows_convexity() {
        assert_eq!(Scheduler::for_cost(&nl_cost()), Scheduler::WaterFilling);
        let lin = SectionCost::new(
            PricingPolicy::Linear(LinearPricing::paper_default(15.0)),
            OverloadPenalty::new(0.15),
            0.9,
        );
        assert_eq!(Scheduler::for_cost(&lin), Scheduler::Greedy);
    }

    #[test]
    fn greedy_quote_charges_beta_per_unit_below_knee() {
        let lin = SectionCost::new(
            PricingPolicy::Linear(LinearPricing::paper_default(15.0)),
            OverloadPenalty::new(0.15),
            0.9,
        );
        let caps = [60.0; 4];
        let loads = [0.0; 4];
        let q = quote(&lin, &caps, &loads, Scheduler::Greedy, 40.0);
        // β̃ = 0.015 $/kWh ⇒ 40 kW costs 0.6.
        assert!((q.payment - 0.015 * 40.0).abs() < 1e-9);
    }
}
