//! Temporal dynamics: the pricing game repeated as batteries fill.
//!
//! The single-shot game treats each OLEV's Eq. 2 bound as fixed. Over a
//! charging lane, it is not: every round of transfer raises the SOC, which
//! shrinks `P_OLEV = (SOC_req − SOC + SOC_min) · P_max · η_E / η_OLEV`, so
//! demand decays as the fleet fills and the lane's congestion relaxes on its
//! own — the temporal counterpart of the static equilibrium the paper
//! analyzes. [`SocCoupledGame`] runs that loop: solve the game, transfer the
//! scheduled power for one interval, update the batteries, repeat.

use oes_units::{Hours, KilowattHours, Kilowatts, OlevId, StateOfCharge};
use oes_wpt::Olev;

use crate::builder::GameBuilder;
use crate::engine::UpdateOrder;
use crate::error::GameError;
use crate::pricing::PricingPolicy;

/// One round of the coupled dynamics.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Round index.
    pub round: usize,
    /// Aggregate demand bound `Σ P_OLEV` entering the round (kW).
    pub total_demand_bound: f64,
    /// Power scheduled at the round's equilibrium (kW).
    pub total_power: f64,
    /// System congestion degree at equilibrium.
    pub congestion: f64,
    /// Mean fleet SOC after the transfer.
    pub mean_soc: f64,
    /// Energy transferred this round (kWh).
    pub energy_kwh: f64,
}

/// A fleet of OLEVs repeatedly playing the pricing game while charging.
#[derive(Debug)]
pub struct SocCoupledGame {
    fleet: Vec<Olev>,
    sections: usize,
    section_capacity: Kilowatts,
    policy: PricingPolicy,
    eta: f64,
    /// Interval each round's scheduled power flows for.
    pub round_hours: f64,
    seed: u64,
}

impl SocCoupledGame {
    /// Creates the coupled dynamics over a fleet.
    ///
    /// # Panics
    ///
    /// Panics if the fleet is empty or `round_hours` is not positive.
    #[must_use]
    pub fn new(
        fleet: Vec<Olev>,
        sections: usize,
        section_capacity: Kilowatts,
        policy: PricingPolicy,
        eta: f64,
        round_hours: f64,
        seed: u64,
    ) -> Self {
        assert!(!fleet.is_empty(), "need at least one OLEV");
        assert!(round_hours > 0.0, "round duration must be positive");
        Self {
            fleet,
            sections,
            section_capacity,
            policy,
            eta,
            round_hours,
            seed,
        }
    }

    /// The fleet (current battery states included).
    #[must_use]
    pub fn fleet(&self) -> &[Olev] {
        &self.fleet
    }

    /// Mean fleet SOC.
    #[must_use]
    pub fn mean_soc(&self) -> f64 {
        self.fleet
            .iter()
            .map(|o| o.battery().soc().fraction())
            .sum::<f64>()
            / self.fleet.len() as f64
    }

    /// Runs one round: rebuild the game from current SOCs, converge it,
    /// transfer the scheduled energy into the batteries.
    ///
    /// # Errors
    ///
    /// Propagates [`GameError`] from the game run.
    pub fn round(&mut self, index: usize) -> Result<RoundOutcome, GameError> {
        let mut builder = GameBuilder::new()
            .sections(self.sections, self.section_capacity)
            .pricing(self.policy)
            .eta(self.eta);
        let mut total_bound = 0.0;
        for olev in &self.fleet {
            let bound = olev.receivable_power();
            total_bound += bound.value();
            builder = builder.olevs(1, bound);
        }
        let mut game = builder.build()?;
        game.run(
            UpdateOrder::Random {
                seed: self.seed.wrapping_add(index as u64),
            },
            50_000,
        )?;

        let mut energy_total = 0.0;
        for (n, olev) in self.fleet.iter_mut().enumerate() {
            let power = game.schedule().olev_total(OlevId(n));
            let energy = Kilowatts::new(power) * Hours::new(self.round_hours);
            let eff = olev.spec().transfer_efficiency.fraction();
            // Respect the SOC_max safety ceiling, not just the physical pack.
            let headroom = olev.soc_headroom() * olev.spec().battery.energy_capacity().value();
            let intake = (energy.value() * eff).min(headroom.max(0.0));
            let absorbed = olev.battery_mut().charge(KilowattHours::new(intake));
            energy_total += absorbed.value();
        }
        Ok(RoundOutcome {
            round: index,
            total_demand_bound: total_bound,
            total_power: game.schedule().total(),
            congestion: game.system_congestion(),
            mean_soc: self.mean_soc(),
            energy_kwh: energy_total,
        })
    }

    /// Runs `rounds` rounds and returns their outcomes.
    ///
    /// # Errors
    ///
    /// Propagates [`GameError`] from any round.
    pub fn run(&mut self, rounds: usize) -> Result<Vec<RoundOutcome>, GameError> {
        (0..rounds).map(|i| self.round(i)).collect()
    }
}

/// Builds a uniform fleet at a common SOC for the coupled dynamics.
#[must_use]
pub fn uniform_fleet(count: usize, soc: StateOfCharge, soc_required: StateOfCharge) -> Vec<Olev> {
    (0..count)
        .map(|i| {
            Olev::new(
                OlevId(i),
                oes_wpt::OlevSpec::chevy_spark_default(),
                soc,
                soc_required,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::NonlinearPricing;

    fn dynamics(count: usize) -> SocCoupledGame {
        SocCoupledGame::new(
            uniform_fleet(
                count,
                StateOfCharge::saturating(0.4),
                StateOfCharge::saturating(0.9),
            ),
            8,
            Kilowatts::new(30.0),
            PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
            0.9,
            0.05, // 3-minute rounds
            5,
        )
    }

    #[test]
    fn soc_rises_and_demand_decays() {
        let mut d = dynamics(6);
        let rounds = d.run(12).unwrap();
        for w in rounds.windows(2) {
            assert!(w[1].mean_soc >= w[0].mean_soc - 1e-12, "SOC fell");
            assert!(
                w[1].total_demand_bound <= w[0].total_demand_bound + 1e-9,
                "demand bound rose as batteries filled"
            );
        }
        assert!(rounds.last().unwrap().mean_soc > rounds[0].mean_soc);
    }

    #[test]
    fn congestion_relaxes_as_the_fleet_fills() {
        let mut d = dynamics(12);
        let rounds = d.run(40).unwrap();
        let early = rounds[0].congestion;
        let late = rounds.last().unwrap().congestion;
        assert!(late < early, "congestion should decay: {early} -> {late}");
    }

    #[test]
    fn transfer_stops_once_trip_requirement_is_met() {
        let mut d = dynamics(4);
        let rounds = d.run(60).unwrap();
        let last = rounds.last().unwrap();
        // Eq. 2 bound shrinks toward its SOC_min floor; scheduled power and
        // congestion end far below where they started.
        assert!(last.total_power < rounds[0].total_power * 0.7);
        // SOC approaches the requirement/ceiling without crossing it.
        for o in d.fleet() {
            assert!(o.battery().soc() <= StateOfCharge::saturating(0.9));
        }
    }

    #[test]
    fn energy_accounting_matches_power_and_duration() {
        let mut d = dynamics(3);
        let r = d.round(0).unwrap();
        // energy = power × round_hours × η_E, unless the SOC ceiling bit.
        let expected = r.total_power * 0.05 * 0.85;
        assert!(
            (r.energy_kwh - expected).abs() < 1e-6,
            "{} vs {expected}",
            r.energy_kwh
        );
    }

    #[test]
    #[should_panic(expected = "need at least one OLEV")]
    fn empty_fleet_panics() {
        let _ = SocCoupledGame::new(
            vec![],
            4,
            Kilowatts::new(30.0),
            PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
            0.9,
            0.1,
            0,
        );
    }
}
