//! Incremental engine state: a [`PowerSchedule`] plus running welfare sums.
//!
//! Eq. 7's welfare `W(p) = Σ_n U_n(p_n) − Σ_c [Z(P_c) − Z(0)]` is what both
//! engines snapshot after *every* best-response update; recomputing it naively
//! costs O(N·C) per update when Lemma IV.1 only ever touches one row.
//! [`ScheduleState`] keeps the satisfaction sum, the charging-cost sum, and a
//! per-section `Z(P_c)` cache alongside the schedule, so
//! [`ScheduleState::apply_row`] maintains all of them in O(C) per update and
//! [`ScheduleState::welfare`] is O(1).
//!
//! Delta maintenance changes float summation order, so the running sums drift
//! from the naive recompute by a few ulps per update. Every
//! [`resync_every`](ScheduleState::set_resync_interval) applied rows the state
//! recomputes everything from scratch with *exactly* the naive path's
//! summation order, absorbing the residual; with an interval of 1 the state
//! reproduces the pre-incremental engine bit-for-bit, which is how the
//! equivalence tests pin the refactor (`tests/incremental_state.rs`).

use oes_units::OlevId;

use crate::pricing::SectionCost;
use crate::satisfaction::Satisfaction;
use crate::schedule::PowerSchedule;

/// Default number of applied rows between exact welfare resyncs. Drift per
/// apply is a few ulps, so the residual over a window stays many orders of
/// magnitude below the engine's 1e-9 convergence tolerance.
pub const DEFAULT_RESYNC_EVERY: usize = 64;

/// A [`PowerSchedule`] bundled with incrementally maintained welfare state.
///
/// The environment (satisfaction functions, section cost, capacities) is
/// passed into each mutating call rather than stored, so the state can live
/// inside [`crate::Game`] without self-referential lifetimes.
#[derive(Debug, Clone)]
pub struct ScheduleState {
    schedule: PowerSchedule,
    /// Cached `Z(P_c)` per section, consistent with the schedule's cached
    /// loads.
    z_cache: Vec<f64>,
    /// Cached `Z(0)` per section (constant in `p`).
    z_idle: Vec<f64>,
    /// Running `Σ_c [Z(P_c) − Z(0)]`.
    charging_cost: f64,
    /// Running `Σ_n U_n(p_n)`.
    satisfaction: f64,
    applies: usize,
    resync_every: usize,
}

impl ScheduleState {
    /// Wraps `schedule`, computing the welfare sums exactly.
    ///
    /// # Panics
    ///
    /// Panics if `satisfactions` or `caps` dimensions mismatch the schedule.
    #[must_use]
    pub fn new(
        schedule: PowerSchedule,
        satisfactions: &[Box<dyn Satisfaction>],
        cost: &SectionCost,
        caps: &[f64],
    ) -> Self {
        assert_eq!(
            satisfactions.len(),
            schedule.olev_count(),
            "satisfaction count mismatch"
        );
        assert_eq!(
            caps.len(),
            schedule.section_count(),
            "capacity count mismatch"
        );
        let sections = schedule.section_count();
        let mut state = Self {
            schedule,
            z_cache: vec![0.0; sections],
            z_idle: caps.iter().map(|&cap| cost.z(0.0, cap)).collect(),
            charging_cost: 0.0,
            satisfaction: 0.0,
            applies: 0,
            resync_every: DEFAULT_RESYNC_EVERY,
        };
        state.resync(satisfactions, cost, caps);
        state
    }

    /// The wrapped schedule.
    #[must_use]
    pub fn schedule(&self) -> &PowerSchedule {
        &self.schedule
    }

    /// Unwraps the schedule, dropping the cached sums.
    #[must_use]
    pub fn into_schedule(self) -> PowerSchedule {
        self.schedule
    }

    /// `W(p)` (Eq. 7) from the running sums. O(1).
    #[must_use]
    pub fn welfare(&self) -> f64 {
        self.satisfaction - self.charging_cost
    }

    /// How many rows have been applied since construction.
    #[must_use]
    pub fn applies(&self) -> usize {
        self.applies
    }

    /// Sets the exact-resync interval: every `every` applied rows the running
    /// sums are recomputed from scratch. An interval of 1 reproduces the
    /// naive recompute path exactly.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn set_resync_interval(&mut self, every: usize) {
        assert!(every > 0, "resync interval must be nonzero");
        self.resync_every = every;
    }

    /// Sets the wrapped schedule's write-resync interval
    /// ([`PowerSchedule::set_resync_writes`]) — the cadence at which the
    /// cached loads snapshot is recomputed exactly.
    ///
    /// # Panics
    ///
    /// Panics if `writes` is zero.
    pub fn set_schedule_resync_writes(&mut self, writes: usize) {
        self.schedule.set_resync_writes(writes);
    }

    /// [`PowerSchedule::loads_excluding_into`] on the wrapped schedule.
    pub fn loads_excluding_into(&self, n: OlevId, out: &mut Vec<f64>) {
        self.schedule.loads_excluding_into(n, out);
    }

    /// Replaces OLEV `n`'s row and maintains the welfare sums in O(C),
    /// returning the OLEV's new total `p_n`.
    ///
    /// # Panics
    ///
    /// Panics as [`PowerSchedule::set_row`] does, or on dimension mismatch.
    pub fn apply_row(
        &mut self,
        n: OlevId,
        row: &[f64],
        satisfactions: &[Box<dyn Satisfaction>],
        cost: &SectionCost,
        caps: &[f64],
    ) -> f64 {
        let old_total = self.schedule.olev_total(n);
        let old_value = satisfactions[n.index()].value(old_total);
        self.schedule.set_row(n, row);
        for (c, &cap) in caps.iter().enumerate() {
            let z_new = cost.z(self.schedule.loads()[c], cap);
            self.charging_cost += z_new - self.z_cache[c];
            self.z_cache[c] = z_new;
        }
        let new_total = self.schedule.olev_total(n);
        self.satisfaction += satisfactions[n.index()].value(new_total) - old_value;
        self.applies += 1;
        if self.applies.is_multiple_of(self.resync_every) {
            self.resync(satisfactions, cost, caps);
        }
        new_total
    }

    /// [`ScheduleState::apply_row`] through the sparse
    /// [`PowerSchedule::patch_row`] path: only the `Z` caches of the given
    /// ascending footprint `sections` are refreshed, so one commit costs
    /// O(|footprint|) cost evaluations instead of O(C).
    ///
    /// Contract (inherited from `patch_row`): the row is zero outside
    /// `sections`. Loads elsewhere are untouched, so their cached `Z` values
    /// are already exact and the skipped sections would have contributed
    /// exact-zero deltas to the running charging cost — under the contract
    /// this is bit-identical to the full-width [`ScheduleState::apply_row`]
    /// of the scattered row.
    ///
    /// # Panics
    ///
    /// Panics as [`PowerSchedule::patch_row`] does.
    pub fn apply_row_sparse(
        &mut self,
        n: OlevId,
        sections: &[usize],
        values: &[f64],
        satisfactions: &[Box<dyn Satisfaction>],
        cost: &SectionCost,
        caps: &[f64],
    ) -> f64 {
        let old_total = self.schedule.olev_total(n);
        let old_value = satisfactions[n.index()].value(old_total);
        self.schedule.patch_row(n, sections, values);
        for &c in sections {
            let z_new = cost.z(self.schedule.loads()[c], caps[c]);
            self.charging_cost += z_new - self.z_cache[c];
            self.z_cache[c] = z_new;
        }
        let new_total = self.schedule.olev_total(n);
        self.satisfaction += satisfactions[n.index()].value(new_total) - old_value;
        self.applies += 1;
        if self.applies.is_multiple_of(self.resync_every) {
            self.resync(satisfactions, cost, caps);
        }
        new_total
    }

    /// Recomputes schedule aggregates and welfare sums exactly, with the same
    /// summation order as the naive `social_welfare` recompute, absorbing any
    /// accumulated float residual.
    pub fn resync(
        &mut self,
        satisfactions: &[Box<dyn Satisfaction>],
        cost: &SectionCost,
        caps: &[f64],
    ) {
        self.schedule.resync();
        for (c, &cap) in caps.iter().enumerate() {
            self.z_cache[c] = cost.z(self.schedule.loads()[c], cap);
        }
        self.satisfaction = satisfactions
            .iter()
            .enumerate()
            .map(|(n, s)| s.value(self.schedule.olev_total(OlevId(n))))
            .sum();
        self.charging_cost = self
            .z_cache
            .iter()
            .zip(&self.z_idle)
            .map(|(&z, &z0)| z - z0)
            .sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::social_welfare;
    use crate::pricing::{NonlinearPricing, OverloadPenalty, PricingPolicy};
    use crate::satisfaction::LogSatisfaction;

    fn cost() -> SectionCost {
        SectionCost::new(
            PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
            OverloadPenalty::new(0.15),
            0.9,
        )
    }

    fn sats(n: usize) -> Vec<Box<dyn Satisfaction>> {
        (0..n)
            .map(|i| Box::new(LogSatisfaction::new(1.0 + i as f64 * 0.5)) as Box<dyn Satisfaction>)
            .collect()
    }

    #[test]
    fn zero_state_has_zero_welfare() {
        let caps = [60.0; 4];
        let c = cost();
        let state = ScheduleState::new(PowerSchedule::zeros(3, 4), &sats(3), &c, &caps);
        assert!(state.welfare().abs() < 1e-12);
    }

    #[test]
    fn incremental_welfare_matches_naive() {
        let caps = [60.0, 45.0, 70.0];
        let c = cost();
        let ss = sats(3);
        let mut state = ScheduleState::new(PowerSchedule::zeros(3, 3), &ss, &c, &caps);
        let rows: [&[f64]; 5] = [
            &[1.0, 7.0, 2.0],
            &[0.0, 3.0, 9.0],
            &[4.0, 4.0, 4.0],
            &[2.5, 0.0, 6.0],
            &[0.0, 0.0, 0.0],
        ];
        for (k, row) in rows.iter().enumerate() {
            state.apply_row(OlevId(k % 3), row, &ss, &c, &caps);
            let naive = social_welfare(&ss, &c, &caps, state.schedule());
            assert!(
                (state.welfare() - naive).abs() < 1e-9,
                "after apply {k}: cached {} vs naive {naive}",
                state.welfare()
            );
        }
        assert_eq!(state.applies(), 5);
    }

    #[test]
    fn resync_interval_one_tracks_naive_exactly() {
        let caps = [60.0, 45.0];
        let c = cost();
        let ss = sats(2);
        let mut state = ScheduleState::new(PowerSchedule::zeros(2, 2), &ss, &c, &caps);
        state.set_resync_interval(1);
        state.apply_row(OlevId(0), &[3.0, 8.0], &ss, &c, &caps);
        state.apply_row(OlevId(1), &[5.0, 0.5], &ss, &c, &caps);
        let naive = social_welfare(&ss, &c, &caps, state.schedule());
        assert_eq!(state.welfare().to_bits(), naive.to_bits());
    }

    #[test]
    fn sparse_apply_is_bit_identical_to_full_apply() {
        // The partitioned commit path: applying a row through its footprint
        // must reproduce the full-width apply exactly — schedule bits,
        // running sums, and returned totals.
        let caps = [60.0, 45.0, 70.0, 55.0];
        let c = cost();
        let ss = sats(2);
        let mut full = ScheduleState::new(PowerSchedule::zeros(2, 4), &ss, &c, &caps);
        let mut sparse = ScheduleState::new(PowerSchedule::zeros(2, 4), &ss, &c, &caps);
        let moves: [(usize, &[usize], &[f64]); 4] = [
            (0, &[0, 2], &[3.0, 8.0]),
            (1, &[1, 2, 3], &[5.0, 0.5, 2.0]),
            (0, &[0, 2], &[0.0, 1.25]),
            (1, &[1, 2, 3], &[0.0, 0.0, 0.0]),
        ];
        for (n, sections, values) in moves {
            let mut row = vec![0.0; 4];
            for (&s, &v) in sections.iter().zip(values) {
                row[s] = v;
            }
            let a = full.apply_row(OlevId(n), &row, &ss, &c, &caps);
            let b = sparse.apply_row_sparse(OlevId(n), sections, values, &ss, &c, &caps);
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(full.welfare().to_bits(), sparse.welfare().to_bits());
            assert_eq!(full.schedule(), sparse.schedule());
        }
        assert_eq!(full.applies(), sparse.applies());
    }

    #[test]
    #[should_panic(expected = "resync interval must be nonzero")]
    fn zero_resync_interval_rejected() {
        let caps = [60.0];
        let c = cost();
        let mut state = ScheduleState::new(PowerSchedule::zeros(1, 1), &sats(1), &c, &caps);
        state.set_resync_interval(0);
    }
}
