#!/usr/bin/env bash
# Doc-coverage lint, run by CI next to the test suite:
#
#   1. Every public item in oes-game must carry rustdoc. The crate already
#      declares `#![warn(missing_docs)]`; this promotes the warning (and
#      every other rustdoc warning, e.g. broken intra-doc links) to an
#      error so a bare `pub fn` cannot land.
#   2. Every telemetry namespace emitted in code must have a row in
#      ARCHITECTURE.md's "Telemetry namespaces" table — enforced by the
#      std-only scan in tests/doc_coverage.rs.
#
# Usage: scripts/doc_lint.sh   (from the workspace root)
set -euo pipefail

echo "doc lint 1/2: rustdoc coverage of oes-game's public API"
RUSTDOCFLAGS="-D warnings -D missing_docs" cargo doc --no-deps -p oes-game

echo "doc lint 2/2: telemetry namespaces documented in ARCHITECTURE.md"
cargo test -q --test doc_coverage

echo "doc lint passed"
