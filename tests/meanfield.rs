//! The mean-field convergence contract (ARCHITECTURE.md "Mean-field fast
//! path"), pinned:
//!
//! - the welfare gap between the O(C) mean-field solution and the exact
//!   finite-N Nash shrinks at least like 1/N across N ∈ {512, 4096, 16384};
//! - the exact reference on that grid is the *symmetric-Nash oracle* — for a
//!   homogeneous fleet the Nash is symmetric and characterized by one
//!   scalar fixed point (each agent best-responds to the other N−1 agents'
//!   balanced aggregate), computable in O(C) at any N — itself
//!   cross-validated against the Gauss–Seidel engine at an
//!   engine-affordable N;
//! - `WarmStart::MeanField` reaches the cold-start equilibrium welfare
//!   within 1e-9 while spending strictly fewer updates, on homogeneous and
//!   seeded heterogeneous fleets;
//! - the solver is O(C) structurally: its probe count does not depend on N,
//!   and its output is bit-identical for two populations with the same type
//!   mixture enumerated in different orders;
//! - scenarios outside the contract (linear pricing, forced greedy
//!   scheduling, overlapping unequal windows) are rejected with
//!   `GameError::MeanFieldUnsupported`, and disjoint windows decompose into
//!   independent groups.
//!
//! The RNG is a local SplitMix64 so the heterogeneous sweeps stay
//! deterministic and free of external crates.

use oes::game::best_response;
use oes::game::pricing::{LinearPricing, PricingPolicy};
use oes::game::satisfaction::LogSatisfaction;
use oes::game::waterfill::marginal_waterfill;
use oes::game::{
    solve_mean_field, Game, GameBuilder, GameError, Scheduler, UpdateOrder, WarmStart,
};
use oes::units::Kilowatts;

/// SplitMix64: tiny, seedable, and plenty for test-case generation.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick<T: Copy>(&mut self, choices: &[T]) -> T {
        choices[(self.next() % choices.len() as u64) as usize]
    }
}

fn homogeneous(n: usize, c: usize, warm: WarmStart) -> Game {
    GameBuilder::new()
        .sections(c, Kilowatts::new(60.0))
        .olevs(n, Kilowatts::new(50.0))
        .warm_start(warm)
        .build()
        .unwrap()
}

/// The exact symmetric Nash welfare of a homogeneous fleet, O(C) at any N:
/// solves `p = BR((N−1)·p as a balanced background)` by scalar bisection —
/// precisely the exact engine's fixed point, *with* the own-row exclusion
/// the mean-field approximation drops.
fn symmetric_nash_welfare(game: &Game, n: usize) -> f64 {
    let caps = game.caps();
    let cost = game.cost();
    let sat = game.satisfactions()[0].as_ref();
    let p_max = game.p_max()[0];
    let zeros = vec![0.0; caps.len()];
    let others = |p: f64| -> Vec<f64> {
        let total = (n as f64 - 1.0) * p;
        if total <= 0.0 {
            zeros.clone()
        } else {
            marginal_waterfill(cost, caps, &zeros, total).shares
        }
    };
    let residual = |p: f64| -> f64 {
        best_response(sat, cost, caps, &others(p), p_max, Scheduler::WaterFilling).total - p
    };
    let (mut lo, mut hi) = (0.0, p_max);
    if residual(0.0) <= 0.0 {
        hi = 0.0;
    } else if residual(p_max) >= 0.0 {
        lo = p_max;
    } else {
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if residual(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
    let p = 0.5 * (lo + hi);
    let background = others(p);
    let br = best_response(sat, cost, caps, &background, p_max, Scheduler::WaterFilling);
    let mut welfare = n as f64 * sat.value(br.total);
    for ((&bg, &cap), &own) in background.iter().zip(caps).zip(&br.allocation.shares) {
        welfare -= cost.z(bg + own, cap) - cost.z(0.0, cap);
    }
    welfare
}

/// (i) The ISSUE grid: the mean-field welfare sits *below* the exact Nash
/// (the representative double-counts its own load and under-requests), the
/// gap shrinks monotonically, and the overall decay is at least ~1/N
/// (with 1.5× slack against the measured super-linear decay).
#[test]
fn welfare_gap_shrinks_like_one_over_n() {
    const GRID: [usize; 3] = [512, 4096, 16384];
    let c = 32;
    let mut gaps = Vec::new();
    for &n in &GRID {
        let game = homogeneous(n, c, WarmStart::Cold);
        let mf = solve_mean_field(&game).unwrap();
        let exact = symmetric_nash_welfare(&game, n);
        let gap = exact - mf.welfare();
        assert!(
            gap > 0.0,
            "N={n}: mean-field welfare {} should undershoot the exact Nash {exact}",
            mf.welfare()
        );
        gaps.push(gap);
    }
    assert!(
        gaps[1] < gaps[0] && gaps[2] < gaps[1],
        "gap must shrink monotonically across the grid: {gaps:?}"
    );
    for (i, &n) in GRID.iter().enumerate().skip(1) {
        let budget = gaps[0] * (GRID[0] as f64 / n as f64) * 1.5;
        assert!(
            gaps[i] <= budget,
            "N={n}: gap {} decays slower than ~1/N (budget {budget})",
            gaps[i]
        );
    }
}

/// The scalar oracle and the Gauss–Seidel engine agree at an
/// engine-affordable N — what licenses using the oracle on the big grid.
#[test]
fn symmetric_oracle_matches_gauss_seidel_engine() {
    let (n, c) = (192, 16);
    let mut game = homogeneous(n, c, WarmStart::Cold);
    let outcome = game.run(UpdateOrder::RoundRobin, 400 * n).unwrap();
    assert!(outcome.converged());
    let oracle = symmetric_nash_welfare(&game, n);
    assert!(
        (outcome.final_welfare() - oracle).abs() < 1e-8,
        "engine {} vs oracle {oracle}",
        outcome.final_welfare()
    );
}

/// (ii) Warm-started exact runs land on the cold-start equilibrium welfare
/// within 1e-9, spending strictly fewer updates.
#[test]
fn warm_start_matches_cold_welfare_within_1e9() {
    let (n, c) = (384, 16);
    let mut cold = homogeneous(n, c, WarmStart::Cold);
    let mut warm = homogeneous(n, c, WarmStart::MeanField);
    let oc = cold.run(UpdateOrder::RoundRobin, 400 * n).unwrap();
    let ow = warm.run(UpdateOrder::RoundRobin, 400 * n).unwrap();
    assert!(oc.converged() && ow.converged());
    assert!(
        (oc.final_welfare() - ow.final_welfare()).abs() <= 1e-9,
        "cold {} vs warm {}",
        oc.final_welfare(),
        ow.final_welfare()
    );
    assert!(
        ow.updates() < oc.updates(),
        "warm start must save updates: warm {} vs cold {}",
        ow.updates(),
        oc.updates()
    );
}

/// (ii) again on a seeded heterogeneous fleet: several weight/p_max classes
/// drawn through SplitMix64, so type aggregation is non-trivial.
#[test]
fn warm_start_on_seeded_heterogeneous_fleet() {
    let mut rng = SplitMix64(0x9_2026);
    let build = |rng: &mut SplitMix64, warm: WarmStart| {
        let mut b = GameBuilder::new()
            .sections(8, Kilowatts::new(60.0))
            .warm_start(warm);
        for _ in 0..256 {
            let p_max = rng.pick(&[30.0, 40.0, 50.0]);
            let weight = rng.pick(&[1.0, 1.5, 2.0]);
            b = b.olev_with(
                Kilowatts::new(p_max),
                Box::new(LogSatisfaction::new(weight)),
            );
        }
        b.build().unwrap()
    };
    let seed = rng.next();
    let mut cold = build(&mut SplitMix64(seed), WarmStart::Cold);
    let mut warm = build(&mut SplitMix64(seed), WarmStart::MeanField);
    let mf = solve_mean_field(&cold).unwrap();
    assert!(
        mf.types().len() <= 9,
        "at most 3×3 classes: {}",
        mf.types().len()
    );
    assert!(mf.types().len() > 1, "seeded fleet should be heterogeneous");
    let oc = cold.run(UpdateOrder::RoundRobin, 600 * 256).unwrap();
    let ow = warm.run(UpdateOrder::RoundRobin, 600 * 256).unwrap();
    assert!(oc.converged() && ow.converged());
    assert!((oc.final_welfare() - ow.final_welfare()).abs() <= 1e-9);
    assert!(ow.updates() < oc.updates());
}

/// (iii) O(C) invariance, structural half: the fixed-point probe count
/// depends on the scenario shape, never on the population size.
#[test]
fn probe_count_is_independent_of_population_size() {
    let small = solve_mean_field(&homogeneous(512, 32, WarmStart::Cold)).unwrap();
    let large = solve_mean_field(&homogeneous(16384, 32, WarmStart::Cold)).unwrap();
    assert_eq!(small.probes(), large.probes());
    assert_eq!(small.groups(), large.groups());
    assert_eq!(small.types().len(), large.types().len());
    // The materialized aggregate respects the fixed point: Σ count·p_t.
    for sol in [&small, &large] {
        let total: f64 = sol.section_loads().iter().sum();
        assert!((total - sol.total()).abs() < 1e-6 * sol.total().max(1.0));
    }
}

/// (iii) O(C) invariance, mixture half: two populations with the same type
/// mixture but different enumeration orders produce bit-identical
/// solutions (types are canonically sorted before the residual sums run).
#[test]
fn solver_output_is_invariant_to_enumeration_order() {
    let blocked = GameBuilder::new()
        .sections(12, Kilowatts::new(60.0))
        .olevs_weighted(96, Kilowatts::new(50.0), 1.0)
        .olevs_weighted(64, Kilowatts::new(30.0), 2.0)
        .build()
        .unwrap();
    let mut interleaved = GameBuilder::new().sections(12, Kilowatts::new(60.0));
    for i in 0..160 {
        // The same 96 + 64 mixture, interleaved: 2 heavy per 5 slots.
        if i % 5 == 2 || i % 5 == 4 {
            interleaved =
                interleaved.olev_with(Kilowatts::new(30.0), Box::new(LogSatisfaction::new(2.0)));
        } else {
            interleaved =
                interleaved.olev_with(Kilowatts::new(50.0), Box::new(LogSatisfaction::new(1.0)));
        }
    }
    let interleaved = interleaved.build().unwrap();
    let a = solve_mean_field(&blocked).unwrap();
    let b = solve_mean_field(&interleaved).unwrap();
    assert_eq!(a.welfare().to_bits(), b.welfare().to_bits());
    assert_eq!(a.types().len(), b.types().len());
    for (ta, tb) in a.types().iter().zip(b.types()) {
        assert_eq!(ta.count, tb.count);
        assert_eq!(ta.total.to_bits(), tb.total.to_bits());
        let rows_equal = ta
            .allocation
            .iter()
            .zip(&tb.allocation)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(rows_equal, "per-type allocations must be bit-identical");
    }
    for (&la, &lb) in a.section_loads().iter().zip(b.section_loads()) {
        assert_eq!(la.to_bits(), lb.to_bits());
    }
}

/// Scenarios outside the contract are rejected with a typed error; the
/// exact engines still handle them.
#[test]
fn unsupported_scenarios_are_rejected() {
    // Linear pricing: greedy filling, no marginal-balanced limit profile.
    let linear = GameBuilder::new()
        .sections(4, Kilowatts::new(60.0))
        .olevs(8, Kilowatts::new(40.0))
        .pricing(PricingPolicy::Linear(LinearPricing::paper_default(15.0)))
        .build()
        .unwrap();
    assert!(matches!(
        solve_mean_field(&linear),
        Err(GameError::MeanFieldUnsupported { .. })
    ));

    // A forced greedy scheduler under convex pricing is equally outside.
    let forced = GameBuilder::new()
        .sections(4, Kilowatts::new(60.0))
        .olevs(8, Kilowatts::new(40.0))
        .force_scheduler(Scheduler::Greedy)
        .build()
        .unwrap();
    assert!(matches!(
        solve_mean_field(&forced),
        Err(GameError::MeanFieldUnsupported { .. })
    ));

    // Overlapping unequal windows couple the per-window fixed points.
    let overlapping = GameBuilder::new()
        .sections(24, Kilowatts::new(60.0))
        .olevs_in(16, Kilowatts::new(40.0), 0..16)
        .olevs_in(16, Kilowatts::new(40.0), 8..24)
        .build()
        .unwrap();
    assert!(matches!(
        solve_mean_field(&overlapping),
        Err(GameError::MeanFieldUnsupported { .. })
    ));

    // And the builder surfaces the same rejection for a mean-field warm
    // start on an unsupported scenario.
    let err = GameBuilder::new()
        .sections(4, Kilowatts::new(60.0))
        .olevs(8, Kilowatts::new(40.0))
        .pricing(PricingPolicy::Linear(LinearPricing::paper_default(15.0)))
        .warm_start(WarmStart::MeanField)
        .build()
        .unwrap_err();
    assert!(matches!(err, GameError::MeanFieldUnsupported { .. }));
}

/// Disjoint windows decompose: the two-corridor solution equals the two
/// single-corridor solutions computed independently.
#[test]
fn disjoint_windows_solve_independently() {
    let combined = GameBuilder::new()
        .sections(24, Kilowatts::new(60.0))
        .olevs_in(96, Kilowatts::new(50.0), 0..12)
        .olevs_weighted_in(64, Kilowatts::new(30.0), 2.0, 12..24)
        .build()
        .unwrap();
    let sol = solve_mean_field(&combined).unwrap();
    assert_eq!(sol.groups(), 2);
    assert_eq!(sol.types().len(), 2);

    let left = GameBuilder::new()
        .sections(12, Kilowatts::new(60.0))
        .olevs(96, Kilowatts::new(50.0))
        .build()
        .unwrap();
    let right = GameBuilder::new()
        .sections(12, Kilowatts::new(60.0))
        .olevs_weighted(64, Kilowatts::new(30.0), 2.0)
        .build()
        .unwrap();
    let sol_l = solve_mean_field(&left).unwrap();
    let sol_r = solve_mean_field(&right).unwrap();
    assert!((sol.welfare() - (sol_l.welfare() + sol_r.welfare())).abs() < 1e-9);
    for c in 0..12 {
        assert!((sol.section_loads()[c] - sol_l.section_loads()[c]).abs() < 1e-9);
        assert!((sol.section_loads()[12 + c] - sol_r.section_loads()[c]).abs() < 1e-9);
    }
    // Rows stay zero outside each type's window.
    for ty in sol.types() {
        let (w0, w1) = ty.window;
        for (c, &x) in ty.allocation.iter().enumerate() {
            if c < w0 || c >= w1 {
                assert_eq!(x, 0.0);
            }
        }
    }
}

/// The materialized schedule is consistent: `to_schedule` loads match the
/// solution's section loads, and warm-starting an engine with it reproduces
/// the mean-field welfare before any update runs.
#[test]
fn materialized_schedule_is_consistent() {
    let mut game = homogeneous(512, 16, WarmStart::Cold);
    let sol = solve_mean_field(&game).unwrap();
    let schedule = sol.to_schedule();
    for (&a, &b) in schedule.loads().iter().zip(sol.section_loads()) {
        assert!((a - b).abs() < 1e-9);
    }
    game.set_schedule(schedule);
    assert!((game.welfare() - sol.welfare()).abs() < 1e-9 * sol.welfare().abs().max(1.0));
}
