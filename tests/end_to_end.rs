//! End-to-end pipeline tests: grid operator → β, traffic study → dwell and
//! OLEV capacities, WPT objects → game, and the qualitative shapes of every
//! figure family in the paper's evaluation.

use oes::game::{GameBuilder, LinearPricing, NonlinearPricing, PricingPolicy, UpdateOrder};
use oes::grid::{GridOperator, OperatorConfig};
use oes::traffic::HourlyCounts;
use oes::units::{
    Kilowatts, Meters, MetersPerSecond, MilesPerHour, OlevId, SectionId, StateOfCharge,
};
use oes::wpt::{ChargingSection, IntersectionStudy, Olev, OlevSpec};

/// Fig. 2 pipeline: the simulated operator reproduces the paper's bands.
#[test]
fn grid_day_matches_paper_bands() {
    let day = GridOperator::new(OperatorConfig::nyiso_like(), 42).simulate_day();
    assert!(day.min_integrated_load().value() > 3700.0);
    assert!(day.max_integrated_load().value() < 7000.0);
    assert!(day.max_abs_deficiency().value() < 350.0);
    let (lo, hi) = day.lbmp_range();
    assert_eq!(lo.value(), 12.52);
    assert!(hi.value() <= 300.0);
    let anc = day.mean_ancillary_price().value();
    assert!((5.0..=25.0).contains(&anc));
}

/// Fig. 3 pipeline: at-light placement dominates mid-block, and the energy
/// series is the dwell series scaled by section power.
#[test]
fn intersection_study_shapes() {
    let report = IntersectionStudy::new()
        .counts(HourlyCounts::new(vec![200, 700, 200]))
        .hours(3)
        .seed(11)
        .run();
    assert!(report.at_light.total_dwell() > report.at_middle.total_dwell());
    // The busy middle hour dominates both quiet shoulders.
    assert!(report.at_light.dwell[1] > report.at_light.dwell[0]);
    assert!(report.at_light.dwell[1] > report.at_light.dwell[2]);
    for (d, e) in report.at_light.dwell.iter().zip(&report.at_light.energy) {
        assert!((e.value() - 100.0 * d.value() / 3600.0).abs() < 1e-9);
    }
}

/// WPT objects wire straight into the game (Eqs. 1–3 feeding Section IV).
#[test]
fn wpt_to_game_pipeline() {
    let spec = OlevSpec::chevy_spark_default();
    let mut olevs: Vec<Olev> = (0..10)
        .map(|i| {
            Olev::new(
                OlevId(i),
                spec,
                StateOfCharge::saturating(0.3 + 0.03 * i as f64),
                StateOfCharge::saturating(0.85),
            )
        })
        .collect();
    for o in &mut olevs {
        o.set_velocity(MilesPerHour::new(60.0).to_meters_per_second());
    }
    let sections: Vec<ChargingSection> = (0..25)
        .map(|i| ChargingSection::paper_default(SectionId(i)))
        .collect();
    let mut game = GameBuilder::new()
        .from_wpt(&olevs, &sections, 300.0)
        .build()
        .unwrap();
    let out = game.run(UpdateOrder::RoundRobin, 5000).unwrap();
    assert!(out.converged());
    assert!(game.schedule().total() > 0.0);
    // Emptier batteries (higher Eq. 2 bound) can take at least as much power.
    let p_first = game.schedule().olev_total(OlevId(0));
    let p_last = game.schedule().olev_total(OlevId(9));
    assert!(p_first >= p_last - 1e-6, "{p_first} vs {p_last}");
}

/// Fig. 5(a) shape: nonlinear unit payment rises with the achieved
/// congestion degree; the linear baseline stays flat at β.
#[test]
fn payment_vs_congestion_shapes() {
    let beta = 15.0;
    let mut nonlinear_points = Vec::new();
    let mut linear_points = Vec::new();
    // Sweep demand to produce a range of equilibrium congestion degrees.
    // Top weight chosen below the point where every OLEV saturates its
    // Eq. 2 bound (congestion would plateau there and the strict
    // monotonicity check would be vacuous).
    for &weight in &[0.3, 0.6, 1.2, 2.4] {
        let run = |policy: PricingPolicy| {
            let mut g = GameBuilder::new()
                .sections(20, Kilowatts::new(60.0))
                .olevs_weighted(15, Kilowatts::new(70.0), weight)
                .pricing(policy)
                .eta(1.0)
                .build()
                .unwrap();
            g.run(UpdateOrder::RoundRobin, 10_000).unwrap();
            (g.system_congestion(), g.unit_payment_dollars_per_mwh())
        };
        nonlinear_points.push(run(PricingPolicy::Nonlinear(
            NonlinearPricing::paper_default(beta),
        )));
        linear_points.push(run(PricingPolicy::Linear(LinearPricing::paper_default(
            beta,
        ))));
    }
    // Nonlinear: congestion and payment both increase with demand.
    for w in nonlinear_points.windows(2) {
        assert!(
            w[1].0 > w[0].0,
            "congestion not increasing: {nonlinear_points:?}"
        );
        assert!(
            w[1].1 > w[0].1,
            "payment not increasing: {nonlinear_points:?}"
        );
    }
    // Linear: payment pinned at β regardless of congestion.
    for (_, payment) in &linear_points {
        assert!(
            (payment - beta).abs() < 0.5,
            "linear payment {payment} != β {beta}"
        );
    }
}

/// Fig. 5(b) shape: welfare increases with the number of sections and with
/// the number of OLEVs.
#[test]
fn welfare_vs_sections_and_olevs() {
    let welfare = |sections: usize, olevs: usize| {
        let mut g = GameBuilder::new()
            .sections(sections, Kilowatts::new(60.0))
            .olevs(olevs, Kilowatts::new(70.0))
            .build()
            .unwrap();
        g.run(UpdateOrder::RoundRobin, 20_000).unwrap();
        g.welfare()
    };
    let w_10 = welfare(10, 30);
    let w_50 = welfare(50, 30);
    let w_90 = welfare(90, 30);
    assert!(w_10 < w_50 && w_50 < w_90, "{w_10} {w_50} {w_90}");
    let w_n30 = welfare(50, 30);
    let w_n50 = welfare(50, 50);
    assert!(w_n30 < w_n50, "{w_n30} vs {w_n50}");
}

/// Fig. 5(c) shape: nonlinear pricing balances the per-section loads;
/// linear pricing leaves them lopsided.
#[test]
fn load_balance_vs_imbalance() {
    let spread = |policy: PricingPolicy| {
        let mut g = GameBuilder::new()
            .sections(40, Kilowatts::new(60.0))
            .olevs_weighted(20, Kilowatts::new(70.0), 2.0)
            .pricing(policy)
            .build()
            .unwrap();
        g.run(UpdateOrder::Random { seed: 5 }, 20_000).unwrap();
        let loads = g.section_loads();
        let max = loads.iter().fold(0.0f64, |m, &l| m.max(l));
        let min = loads.iter().fold(f64::INFINITY, |m, &l| m.min(l));
        max - min
    };
    let nl = spread(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
        15.0,
    )));
    let lin = spread(PricingPolicy::Linear(LinearPricing::paper_default(15.0)));
    assert!(nl < 1e-3, "nonlinear spread {nl}");
    assert!(lin > 10.0, "linear spread {lin}");
}

/// Fig. 5(d) shape: with surplus demand the congestion degree converges to
/// the desired level η, and the 80 mph (lower-capacity) system converges in
/// at least as many updates as the 60 mph one.
#[test]
fn congestion_converges_to_target() {
    let run = |velocity_mph: f64| {
        let v = MilesPerHour::new(velocity_mph).to_meters_per_second();
        let cap = ChargingSection::new(
            SectionId(0),
            oes::units::Volts::new(480.0),
            oes::units::Amperes::new(208.33),
            Meters::new(200.0),
        )
        .sustained_capacity(v, 300.0);
        let mut g = GameBuilder::new()
            .sections(30, Kilowatts::new(cap.value()))
            .olevs_weighted(30, Kilowatts::new(70.0), 3.0)
            .eta(0.9)
            .build()
            .unwrap();
        let out = g.run(UpdateOrder::RoundRobin, 20_000).unwrap();
        // `updates_to_reach` is `None` for a run that never drew power; this
        // fleet provably charges (congestion asserted ≈ 0.9 below), so a
        // missing ramp point is a real failure worth naming. 95% of final
        // measures the ramp itself; 99% is convergence-level precision that
        // the mid-run rebalancing oscillation legitimately re-crosses.
        let ramp = out
            .updates_to_reach(0.95)
            .expect("a charging fleet has a congestion ramp");
        (g.system_congestion(), ramp)
    };
    let (c60, u60) = run(60.0);
    let (c80, u80) = run(80.0);
    assert!((c60 - 0.9).abs() < 0.05, "60 mph congestion {c60}");
    assert!((c80 - 0.9).abs() < 0.05, "80 mph congestion {c80}");
    // Both ramps complete within a couple of sweeps; the 60-vs-80 mph speed
    // *comparison* is measured (not asserted — it is noise-sensitive at this
    // scale) and reported by the fig5/fig6 binaries.
    assert!(u60 <= 90 && u80 <= 90, "ramp too slow: {u60}/{u80}");
}

/// Velocity monotonicity (Eq. 1 through the whole stack): faster traffic
/// means less deliverable power and lower total payments.
#[test]
fn higher_velocity_lowers_capacity_and_payment() {
    let total_payment = |mph: f64| {
        let v = MilesPerHour::new(mph).to_meters_per_second();
        let section = ChargingSection::paper_default(SectionId(0));
        let cap = section.sustained_capacity(v, 300.0);
        let mut g = GameBuilder::new()
            .sections(20, Kilowatts::new(cap.value()))
            .olevs_weighted(15, Kilowatts::new(70.0), 3.0)
            .build()
            .unwrap();
        g.run(UpdateOrder::RoundRobin, 10_000).unwrap();
        (cap.value(), g.total_payment())
    };
    let (cap60, pay60) = total_payment(60.0);
    let (cap80, pay80) = total_payment(80.0);
    assert!(cap80 < cap60);
    assert!(pay80 < pay60, "payment at 80 mph {pay80} !< 60 mph {pay60}");
}

/// β plumbed from the market: a higher LBMP raises everyone's bill.
#[test]
fn lbmp_scales_payments() {
    let payment = |beta: f64| {
        let mut g = GameBuilder::new()
            .sections(10, Kilowatts::new(60.0))
            .olevs_weighted(8, Kilowatts::new(50.0), 5.0)
            .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
                beta,
            )))
            .build()
            .unwrap();
        g.run(UpdateOrder::RoundRobin, 5000).unwrap();
        g.total_payment()
    };
    let low = payment(12.52);
    let high = payment(244.04);
    assert!(high > low, "peak-hour β must cost more: {high} vs {low}");
}

/// Determinism of the full pipeline under a fixed seed.
#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let day = GridOperator::new(OperatorConfig::nyiso_like(), 7).simulate_day();
        let beta = day.at_hour(18.0).lbmp.value();
        let mut g = GameBuilder::new()
            .sections(10, Kilowatts::new(55.0))
            .olevs(5, Kilowatts::new(45.0))
            .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
                beta,
            )))
            .build()
            .unwrap();
        g.run(UpdateOrder::Random { seed: 21 }, 3000).unwrap();
        (g.welfare(), g.section_loads())
    };
    assert_eq!(run(), run());
}

/// The velocity knob of Eq. 1 is visible end to end in the traffic substrate
/// too: a slower corridor yields more dwell per vehicle.
#[test]
fn slower_traffic_dwells_longer() {
    let dwell = |limit_mps: f64| {
        let report = IntersectionStudy::new()
            .counts(HourlyCounts::new(vec![400]))
            .hours(1)
            .seed(3)
            .run();
        // The study uses a fixed limit; emulate velocity via traversal math.
        let v = MetersPerSecond::new(limit_mps);
        let t = Meters::new(200.0) / v;
        (report.at_middle.total_dwell().value(), t.value())
    };
    // Traversal time scales inversely with speed (unit check through types).
    let (_, t_fast) = dwell(35.0);
    let (_, t_slow) = dwell(20.0);
    assert!(t_slow > t_fast);
}
