//! Differential property suite for the lane-indexed traffic engine.
//!
//! Ten seeded random grid co-simulations (lattice size, lane count, signal
//! timing, OD demand, OLEV participation all drawn from a SplitMix64
//! stream) each run twice — once on the indexed engine, once on the seed
//! full-population scan with the reference span walk — and every tick's
//! positions, speeds, lanes, detector occupancies, and received energy
//! must agree bit for bit, as must the completed-trip energy ledgers. A
//! second pass checks the physical invariants the index must preserve on
//! its own: no overlapping vehicles and no teleports.

use std::collections::BTreeMap;

use oes::traffic::{
    shortest_path, EnergyModel, GridNetworkBuilder, HourlyCounts, ScanMode, SpanDetector,
};
use oes::units::{Meters, Seconds, SectionId, StateOfCharge};
use oes::wpt::{ChargingSection, ChargingSpan, CoSimulation, OlevSpec, TripRecord};

/// Ticks each scenario runs (long enough for trips to complete).
const STEPS: usize = 240;

/// Scenarios in the suite.
const SCENARIOS: u64 = 10;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds the `k`-th random scenario: a signalized grid co-simulation
/// with southeast-bound Poisson OD demand, two charging spans, and two
/// detectors on the diagonal route. Block length and speed limit stay at
/// the builder defaults (200 m, 13.4 m/s) — the no-teleport check below
/// relies on both.
fn build(k: u64) -> CoSimulation {
    let mut s = 0x7452_6146_6649_6378 ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut draw = |bound: u64| splitmix64(&mut s) % bound;
    let dim = 3 + draw(4) as usize;
    let lanes = 1 + draw(3) as u32;
    let green = Seconds::new(20.0 + draw(25) as f64);
    let red = Seconds::new(15.0 + draw(30) as f64);
    let sim_seed = draw(1 << 20);
    let mut grid = GridNetworkBuilder::new()
        .size(dim, dim)
        .lanes(lanes)
        .signal(green, red)
        .seed(sim_seed)
        .build();
    for _ in 0..2 + draw(3) {
        let r0 = draw(dim as u64 - 1) as usize;
        let c0 = draw(dim as u64 - 1) as usize;
        let r1 = r0 + 1 + draw((dim - 1 - r0) as u64) as usize;
        let c1 = c0 + 1 + draw((dim - 1 - c0) as u64) as usize;
        let demand = 400 + draw(900) as u32;
        assert!(
            grid.add_od_demand((r0, c0), (r1, c1), HourlyCounts::new(vec![demand])),
            "southeast OD pairs are always routable"
        );
    }
    let diag = shortest_path(
        grid.network(),
        grid.node_at(0, 0),
        grid.node_at(dim - 1, dim - 1),
    )
    .expect("diagonal is routable");
    let span_edges = [diag[0], diag[diag.len() / 2]];
    for (i, &edge) in span_edges.iter().enumerate() {
        grid.sim.add_detector(SpanDetector::new(
            format!("diff-{i}"),
            edge,
            Meters::new(30.0),
            Meters::new(170.0),
        ));
    }
    let participation = 0.2 + draw(8) as f64 / 10.0;
    let co_seed = draw(1 << 20);
    let mut co = CoSimulation::new(
        grid.sim,
        EnergyModel::chevy_spark_ev(),
        OlevSpec::chevy_spark_default(),
        participation,
        StateOfCharge::saturating(0.5),
        co_seed,
    );
    for (i, &edge) in span_edges.iter().enumerate() {
        co.add_span(ChargingSpan {
            edge,
            start: Meters::new(30.0),
            end: Meters::new(170.0),
            section: ChargingSection::paper_default(SectionId(i)),
        });
    }
    co
}

type Ledger = (u64, Vec<u64>, Vec<TripRecord>);

/// Runs scenario `k` under `mode`, returning every tick's full state row
/// plus the final energy ledger. The naive run also takes the seed
/// reference span walk, so it is the full pre-index code path.
fn run(k: u64, mode: ScanMode) -> (Vec<Vec<u64>>, Ledger) {
    let mut co = build(k);
    co.traffic_mut().set_scan_mode(mode);
    co.set_reference_span_matching(mode == ScanMode::NaiveScan);
    let mut ticks = Vec::with_capacity(STEPS);
    for _ in 0..STEPS {
        co.step();
        let mut row = Vec::new();
        for v in co.traffic().vehicles() {
            row.extend([
                v.id.0,
                v.route_index as u64,
                u64::from(v.lane),
                v.position.value().to_bits(),
                v.speed.value().to_bits(),
            ]);
        }
        for d in co.traffic().detectors() {
            row.push(d.total_occupancy().value().to_bits());
        }
        row.push(co.total_received().value().to_bits());
        ticks.push(row);
    }
    let hours = co
        .received_per_hour()
        .series()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let ledger = (
        co.total_received().value().to_bits(),
        hours,
        co.completed_trips().to_vec(),
    );
    (ticks, ledger)
}

#[test]
fn ten_seeded_scenarios_are_bit_identical_across_modes() {
    for k in 0..SCENARIOS {
        let (ticks_indexed, ledger_indexed) = run(k, ScanMode::Indexed);
        let (ticks_naive, ledger_naive) = run(k, ScanMode::NaiveScan);
        assert_eq!(ticks_indexed.len(), ticks_naive.len());
        for (t, (a, b)) in ticks_indexed.iter().zip(&ticks_naive).enumerate() {
            assert_eq!(a, b, "scenario {k} diverged at tick {t}");
        }
        assert_eq!(
            ledger_indexed, ledger_naive,
            "scenario {k}: energy ledgers diverged"
        );
        // The suite must exercise real traffic, not empty grids.
        assert!(
            ticks_indexed.last().is_some_and(|row| row.len() > 3),
            "scenario {k} stayed empty"
        );
    }
}

#[test]
fn indexed_path_preserves_physical_invariants() {
    for k in 0..SCENARIOS {
        let mut co = build(k);
        assert_eq!(co.traffic().scan_mode(), ScanMode::Indexed);
        let dt = co.traffic().config().step.value();
        // Builder defaults the suite relies on (see `build`).
        let (block, limit) = (200.0, 13.4);
        let mut prev: BTreeMap<u64, (usize, f64)> = BTreeMap::new();
        for step in 0..STEPS {
            co.step();
            let mut per_lane: BTreeMap<(usize, u32), Vec<(f64, f64)>> = BTreeMap::new();
            let mut now: BTreeMap<u64, (usize, f64)> = BTreeMap::new();
            for v in co.traffic().vehicles() {
                per_lane
                    .entry((v.current_edge().0, v.lane))
                    .or_default()
                    .push((v.position.value(), v.params.length.value()));
                now.insert(v.id.0, (v.route_index, v.position.value()));
            }
            // No overlap: per (edge, lane), each follower's front stays
            // behind its leader's rear. The one sanctioned exception is
            // gridlock spillback: the overlap clamp floors positions at
            // the edge start, so a leader whose rear hangs before 0 can
            // have followers stacked on the floor beneath it.
            for ((edge, lane), mut list) in per_lane {
                list.sort_by(|a, b| a.0.total_cmp(&b.0));
                for w in list.windows(2) {
                    let leader_rear = w[1].0 - w[1].1;
                    assert!(
                        w[0].0 <= leader_rear + 1e-6 || leader_rear < 0.0,
                        "scenario {k} step {step}: overlap on edge {edge} lane {lane}"
                    );
                }
            }
            // No teleport: at most one edge boundary per tick (13.4
            // m/step << 200 m blocks), forward motion bounded by the
            // speed limit, backward motion by a few car lengths (the
            // overlap clamp correcting a spillback pile-up) — an index
            // corruption would show up as a jump of hundreds of meters.
            for (id, &(ri, pos)) in &now {
                let Some(&(ri0, pos0)) = prev.get(id) else {
                    continue;
                };
                let dist = match ri.checked_sub(ri0) {
                    Some(0) => pos - pos0,
                    Some(1) => (block - pos0) + pos,
                    _ => panic!("scenario {k} step {step}: vehicle {id} teleported ({ri0}→{ri})"),
                };
                assert!(
                    (-15.0..=limit * dt + 1e-6).contains(&dist),
                    "scenario {k} step {step}: vehicle {id} moved {dist} m in one tick"
                );
            }
            prev = now;
        }
        assert!(
            co.traffic().spawned() > 0,
            "scenario {k} spawned no vehicles"
        );
    }
}
