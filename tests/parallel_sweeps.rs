//! The parallel-sweep equivalence surface.
//!
//! The sharded sweep engine ([`oes::game::parallel`]) promises two things
//! the serial engine cannot check for it:
//!
//! - **Determinism**: same seed + same `ParallelConfig` ⇒ bit-identical
//!   `Outcome` and schedule, whatever the thread timing; `K = 1` is the
//!   serial engine bit for bit.
//! - **Equivalence**: any shard count lands on the *same* equilibrium —
//!   Theorem IV.1's potential argument is indifferent to who moves when,
//!   so `K ∈ {2, 4, 8}` must match the serial welfare within 1e-9 and
//!   agree on the convergence flag.
//!
//! The sweeps run over seeded random scenarios (heterogeneous fleets,
//! varying corridor lengths) generated with a local SplitMix64, so the
//! suite stays deterministic and free of external crates.

use oes::game::{ApplyMode, GameBuilder, ParallelConfig, UpdateOrder};
use oes::units::{Kilowatts, OlevId};

/// SplitMix64: tiny, seedable, and plenty for test-case generation.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A seeded random heterogeneous scenario: 3–14 OLEVs with individual
/// capacity bounds and satisfaction weights over a 4–11 section corridor.
fn random_scenario(rng: &mut SplitMix64) -> oes::game::Game {
    let sections = 4 + rng.pick(8);
    let olevs = 3 + rng.pick(12);
    let mut builder = GameBuilder::new().sections(sections, Kilowatts::new(50.0));
    for _ in 0..olevs {
        let p_max = 25.0 + rng.next_f64() * 35.0;
        let weight = 0.5 + rng.next_f64() * 2.0;
        builder = builder.olevs_weighted(1, Kilowatts::new(p_max), weight);
    }
    builder.build().expect("valid scenario")
}

const BUDGET: usize = 20_000;

#[test]
fn sharded_sweeps_match_the_serial_outcome_across_seeds() {
    for seed in 0..10u64 {
        let mut rng = SplitMix64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        let mut serial = random_scenario(&mut rng);
        let order = UpdateOrder::Random { seed };
        let reference = serial.run(order, BUDGET).expect("serial run");
        for shards in [2usize, 4, 8] {
            let mut rng = SplitMix64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
            let mut game = random_scenario(&mut rng);
            let outcome = game
                .run_parallel(order, BUDGET, ParallelConfig::new(shards))
                .expect("parallel run");
            assert_eq!(
                outcome.converged(),
                reference.converged(),
                "seed {seed}, K={shards}: convergence flags disagree"
            );
            let gap = (outcome.final_welfare() - reference.final_welfare()).abs();
            assert!(
                gap < 1e-9,
                "seed {seed}, K={shards}: welfare gap {gap:e} vs serial"
            );
        }
    }
}

#[test]
fn one_shard_replays_the_serial_engine_bit_for_bit() {
    for seed in [3u64, 17, 99] {
        let mut rng = SplitMix64(seed);
        let mut serial = random_scenario(&mut rng);
        let mut rng = SplitMix64(seed);
        let mut parallel = random_scenario(&mut rng);
        let order = UpdateOrder::Random { seed };
        let a = serial.run(order, 800).expect("serial run");
        let b = parallel
            .run_parallel(order, 800, ParallelConfig::serial())
            .expect("K=1 run");
        assert_eq!(a, b, "seed {seed}: K=1 Outcome differs from serial");
        for n in 0..serial.olev_count() {
            let (x, y) = (
                serial.schedule().row(OlevId(n)),
                parallel.schedule().row(OlevId(n)),
            );
            for (c, (a, b)) in x.iter().zip(y).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "seed {seed}: schedule ({n}, {c}) differs"
                );
            }
        }
    }
}

#[test]
fn same_seed_same_config_replays_bit_identically() {
    for shards in [2usize, 4, 8] {
        let run = || {
            let mut rng = SplitMix64(0xCAFE);
            let mut game = random_scenario(&mut rng);
            let outcome = game
                .run_parallel(
                    UpdateOrder::Random { seed: 11 },
                    BUDGET,
                    ParallelConfig::new(shards).with_batch(shards * 3),
                )
                .expect("parallel run");
            let loads: Vec<u64> = game.section_loads().iter().map(|l| l.to_bits()).collect();
            (outcome, loads)
        };
        let (a, a_loads) = run();
        let (b, b_loads) = run();
        assert_eq!(a, b, "K={shards}: outcomes diverge across replays");
        assert_eq!(a_loads, b_loads, "K={shards}: loads diverge across replays");
    }
}

// ---------------------------------------------------------------------------
// ApplyMode::Partitioned: the concurrent-commit path honors the same
// determinism and equivalence contract (ARCHITECTURE.md, "Parallel apply
// modes"): bit-identical replay within the mode, welfare within 1e-9 of
// the serialized oracle.
// ---------------------------------------------------------------------------

#[test]
fn partitioned_apply_matches_the_serial_welfare_across_seeds() {
    for seed in 0..10u64 {
        let mut rng = SplitMix64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        let mut serial = random_scenario(&mut rng);
        let reference = serial
            .run(UpdateOrder::RoundRobin, BUDGET)
            .expect("serial run");
        for shards in [2usize, 4, 8] {
            let mut rng = SplitMix64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
            let mut game = random_scenario(&mut rng);
            let outcome = game
                .run_parallel(
                    UpdateOrder::RoundRobin,
                    BUDGET,
                    ParallelConfig::new(shards)
                        .with_batch(shards * 2)
                        .with_apply(ApplyMode::Partitioned),
                )
                .expect("partitioned run");
            assert_eq!(
                outcome.converged(),
                reference.converged(),
                "seed {seed}, K={shards}: convergence flags disagree"
            );
            let gap = (outcome.final_welfare() - reference.final_welfare()).abs();
            assert!(
                gap < 1e-9,
                "seed {seed}, K={shards}: partitioned welfare gap {gap:e} vs serial"
            );
        }
    }
}

#[test]
fn partitioned_same_seed_same_config_replays_bit_identically() {
    for shards in [2usize, 4, 8] {
        let run = || {
            let mut rng = SplitMix64(0xCAFE);
            let mut game = random_scenario(&mut rng);
            let outcome = game
                .run_parallel(
                    UpdateOrder::Random { seed: 11 },
                    BUDGET,
                    ParallelConfig::new(shards)
                        .with_batch(shards * 3)
                        .with_apply(ApplyMode::Partitioned),
                )
                .expect("partitioned run");
            let loads: Vec<u64> = game.section_loads().iter().map(|l| l.to_bits()).collect();
            (outcome, loads)
        };
        let (a, a_loads) = run();
        let (b, b_loads) = run();
        assert_eq!(
            a, b,
            "K={shards}: partitioned outcomes diverge across replays"
        );
        assert_eq!(a_loads, b_loads, "K={shards}: partitioned loads diverge");
    }
}

#[test]
fn all_overlapping_footprints_degenerate_to_the_serialized_path() {
    // A uniform fleet over one shared corridor: every best response
    // touches every section, so each round's footprint union-find
    // collapses to a single partition whose cached guard base is exactly
    // the live state. The partitioned apply must then reproduce the
    // serialized apply bit for bit — same Outcome, same schedule bits,
    // same load bits. Resync intervals are pushed out of reach so a
    // mid-round cache rebuild cannot perturb the comparison.
    let build = || {
        GameBuilder::new()
            .sections(6, Kilowatts::new(55.0))
            .olevs(8, Kilowatts::new(45.0))
            .welfare_resync_interval(1_000_000)
            .schedule_resync_writes(1_000_000)
            .build()
            .expect("valid scenario")
    };
    let config = ParallelConfig::new(4).with_batch(8);
    let mut serialized = build();
    let a = serialized
        .run_parallel(UpdateOrder::RoundRobin, BUDGET, config)
        .expect("serialized run");
    let mut partitioned = build();
    let b = partitioned
        .run_parallel(
            UpdateOrder::RoundRobin,
            BUDGET,
            config.with_apply(ApplyMode::Partitioned),
        )
        .expect("partitioned run");
    assert_eq!(
        a, b,
        "degenerate partitioned Outcome differs from serialized"
    );
    for n in 0..serialized.olev_count() {
        let (x, y) = (
            serialized.schedule().row(OlevId(n)),
            partitioned.schedule().row(OlevId(n)),
        );
        for (c, (p, q)) in x.iter().zip(y).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "schedule ({n}, {c}) differs");
        }
    }
    let a_loads: Vec<u64> = serialized
        .section_loads()
        .iter()
        .map(|l| l.to_bits())
        .collect();
    let b_loads: Vec<u64> = partitioned
        .section_loads()
        .iter()
        .map(|l| l.to_bits())
        .collect();
    assert_eq!(a_loads, b_loads, "degenerate partitioned loads differ");
}

#[test]
fn batch_shape_changes_the_path_not_the_equilibrium() {
    // Different batch sizes take different routes through the potential
    // landscape but must land on the unique maximizer.
    let build = || {
        let mut rng = SplitMix64(0xBEEF);
        random_scenario(&mut rng)
    };
    let mut serial = build();
    let reference = serial
        .run(UpdateOrder::RoundRobin, BUDGET)
        .expect("serial run");
    assert!(reference.converged(), "reference must converge");
    for batch in [2usize, 5, 13] {
        let mut game = build();
        let outcome = game
            .run_parallel(
                UpdateOrder::RoundRobin,
                BUDGET,
                ParallelConfig::new(3).with_batch(batch),
            )
            .expect("parallel run");
        assert!(outcome.converged(), "batch {batch} must converge");
        let gap = (outcome.final_welfare() - reference.final_welfare()).abs();
        assert!(gap < 1e-9, "batch {batch}: welfare gap {gap:e}");
    }
}
