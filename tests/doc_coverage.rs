//! Doc-coverage lint: every telemetry namespace emitted anywhere in the
//! workspace must have a row in ARCHITECTURE.md's "Telemetry namespaces"
//! table.
//!
//! This is the half of the doc lint that rustdoc cannot enforce; the other
//! half (`-D missing_docs` on `oes-game`'s public API) runs in
//! `scripts/doc_lint.sh`, which CI invokes alongside this test. The scan is
//! intentionally textual and std-only: it walks `crates/*/src`, collects
//! every string literal passed to `.counter(` / `.gauge(` / `.span(` /
//! `.histogram(` in non-test code, maps each metric name to its namespace
//! (everything up to the last `.`-segment), and demands a `` `ns.*` ``
//! first-column cell in the table. A new `engine.meanfield.probes` counter
//! without an `engine.meanfield.*` row fails this test, not a reviewer.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

const EMITTERS: [&str; 4] = [".counter(", ".gauge(", ".span(", ".histogram("];

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Drops everything from the conventional trailing `#[cfg(test)]` module on
/// (unit tests emit scratch metric names that are not part of the public
/// telemetry surface), plus comment lines (rustdoc prose may mention
/// emitter calls without emitting).
fn production_lines(source: &str) -> impl Iterator<Item = &str> {
    source
        .lines()
        .take_while(|line| line.trim_start() != "#[cfg(test)]")
        .filter(|line| !line.trim_start().starts_with("//"))
}

/// Extracts the metric-name literals passed to telemetry emitters on one
/// line. Only dotted lowercase literals count: a variable or single-segment
/// name has no namespace for the table to document, so it is skipped.
fn metric_names(line: &str) -> Vec<String> {
    let mut names = Vec::new();
    for emitter in EMITTERS {
        for (at, _) in line.match_indices(emitter) {
            let tail = &line[at + emitter.len()..];
            let Some(literal) = tail.strip_prefix('"') else {
                continue;
            };
            let name: String = literal
                .chars()
                .take_while(|c| c.is_ascii_lowercase() || *c == '.' || *c == '_')
                .collect();
            if literal[name.len()..].starts_with('"') && name.contains('.') {
                names.push(name);
            }
        }
    }
    names
}

#[test]
fn every_emitted_namespace_is_documented_in_architecture_md() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let architecture =
        fs::read_to_string(root.join("ARCHITECTURE.md")).expect("ARCHITECTURE.md at repo root");
    let table = architecture
        .split("## Telemetry namespaces")
        .nth(1)
        .expect("ARCHITECTURE.md keeps a 'Telemetry namespaces' section");

    let mut files = Vec::new();
    for crate_dir in fs::read_dir(root.join("crates")).expect("crates/ at repo root") {
        let crate_dir = crate_dir.expect("dir entry").path();
        // The telemetry crate implements the recorder API; the names its own
        // docs and helpers mention are placeholders, not emitted namespaces.
        if crate_dir.file_name().is_some_and(|n| n == "telemetry") {
            continue;
        }
        let src = crate_dir.join("src");
        if src.is_dir() {
            rs_files(&src, &mut files);
        }
    }
    assert!(files.len() > 10, "source scan found too few files to trust");

    let mut namespaces = BTreeSet::new();
    for file in &files {
        let source = fs::read_to_string(file).expect("readable source file");
        for line in production_lines(&source) {
            for name in metric_names(line) {
                let namespace = name.rsplit_once('.').expect("dotted name").0;
                namespaces.insert(namespace.to_owned());
            }
        }
    }
    assert!(
        namespaces.contains("engine.meanfield"),
        "scan must see the mean-field solver's own telemetry; \
         emitter extraction is broken if it does not"
    );

    let missing: Vec<&String> = namespaces
        .iter()
        .filter(|ns| !table.contains(&format!("| `{ns}.*`")))
        .collect();
    assert!(
        missing.is_empty(),
        "telemetry namespaces emitted in code but missing from \
         ARCHITECTURE.md's 'Telemetry namespaces' table: {missing:?} — \
         add a `| `ns.*` |` row describing the events"
    );
}

#[cfg(test)]
mod extraction {
    use super::metric_names;

    #[test]
    fn extracts_literal_dotted_names_only() {
        assert_eq!(
            metric_names(r#"telemetry.gauge("engine.meanfield.types", -1, 3.0);"#),
            vec!["engine.meanfield.types".to_owned()]
        );
        assert_eq!(
            metric_names(r#"t.counter("a.b", 0, 1); t.span("c.d.e", -1);"#),
            vec!["a.b".to_owned(), "c.d.e".to_owned()]
        );
        // Variables and single-segment names are not in contract.
        assert!(metric_names("telemetry.counter(name, 0, 1);").is_empty());
        assert!(metric_names(r#"telemetry.counter("loose", 0, 1);"#).is_empty());
    }
}
