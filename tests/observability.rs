//! Observability acceptance suite: live metrics, offer tracing, and the
//! admin surface, end to end.
//!
//! The claims pinned here, mirroring the PR's acceptance criteria:
//!
//! 1. **Metrics tell the truth.** A service run instrumented with the
//!    [`AggregatingRecorder`] exposes counters that match the protocol
//!    core's own [`DegradationReport`] *exactly* — offers, retries,
//!    timeouts, duplicates, stale replies, evictions. No sampling, no
//!    drift.
//! 2. **Determinism survives instrumentation.** Same-seed virtual-clock
//!    runs produce byte-identical journals (trace fields included) and
//!    byte-identical `/metrics` expositions; the trace seed reaches the
//!    journal bytes but never the aggregate (metrics are trace-blind).
//! 3. **The admin surface works over real sockets.** `/healthz`,
//!    `/readyz`, and `/metrics` answer correctly from a live
//!    `serve_tcp_with_admin` loop, and readiness reflects session
//!    attachment.
//! 4. **The stall watchdog flips readiness.** In-flight offers with no
//!    apply progress past the budget trip `service.admin.stall` and drop
//!    readiness; the next applied update recovers it.

use std::sync::Arc;
use std::time::Duration;

use oes::game::{Game, GameBuilder, LogSatisfaction};
use oes::service::{
    loopback_pair, AdminServer, BestResponder, ClientConfig, ClientSession, CoordinatorService,
    HealthState, ServiceConfig, ServiceStatus,
};
use oes::telemetry::{
    parse_exposition, AggregatingRecorder, FanoutRecorder, JournalRecorder, ManualClock, Telemetry,
};
use oes::units::Kilowatts;

const SECTIONS: usize = 6;
const PIPE: usize = 1 << 16;

fn build(olevs: usize) -> Game {
    GameBuilder::new()
        .sections(SECTIONS, Kilowatts::new(60.0))
        .olevs(olevs, Kilowatts::new(50.0))
        .build()
        .unwrap()
}

fn make_client(game: &Game, olev: usize) -> ClientSession {
    let responder = BestResponder::new(
        Box::new(LogSatisfaction::new(1.0)),
        *game.cost(),
        game.caps().to_vec(),
        game.p_max()[olev],
        game.scheduler(),
    );
    ClientSession::new(
        olev,
        Box::new(responder),
        ClientConfig::default(),
        Telemetry::disabled(),
    )
}

/// Degradation counters captured before `finish` consumes the service.
#[derive(Debug, PartialEq, Eq)]
struct ReportCounts {
    offers: u64,
    retries: u64,
    timeouts: u64,
    duplicates: u64,
    stale: u64,
    invalid: u64,
    evictions: u64,
}

/// One deterministic virtual-clock service run with full instrumentation:
/// a journal and an aggregator fanned out behind one `Telemetry`. OLEV
/// `ghost` (if any) never connects, so its offers time out, retry, and
/// evict — deterministic degradation without fault injection.
fn instrumented_run(
    olevs: usize,
    ghost: Option<usize>,
    trace_seed: u64,
) -> (String, String, ReportCounts, Arc<AggregatingRecorder>) {
    let mut game = build(olevs);
    let clock = Arc::new(ManualClock::new());
    let journal = Arc::new(JournalRecorder::new("observability", trace_seed));
    let aggregator = Arc::new(AggregatingRecorder::new(4));
    let telemetry = Telemetry::with_clock(
        Arc::new(FanoutRecorder::new(vec![
            journal.clone(),
            aggregator.clone(),
        ])),
        clock.clone(),
    );
    let mut config = ServiceConfig::default();
    config.session.max_updates = 40;
    config.session.offer_timeout = Duration::from_millis(5);
    config.session.retry_budget = 2;
    config.session.trace_seed = trace_seed;
    let mut clients: Vec<Option<ClientSession>> = (0..olevs)
        .map(|olev| (Some(olev) != ghost).then(|| make_client(&game, olev)))
        .collect();
    let mut service = CoordinatorService::new(&mut game, config, telemetry);
    for client in clients.iter_mut().flatten() {
        let (client_end, server_end) = loopback_pair(PIPE);
        service.accept(Box::new(server_end));
        client.connect(Box::new(client_end), 0);
    }
    let mut now = 0u64;
    for _ in 0..50_000 {
        clock.set_micros(now);
        for client in clients.iter_mut().flatten() {
            client.poll(now);
        }
        let status = service.poll(now);
        for client in clients.iter_mut().flatten() {
            client.poll(now);
        }
        if status == ServiceStatus::Done {
            let report = service.report();
            let counts = ReportCounts {
                offers: report.offers_sent as u64,
                retries: report.retries as u64,
                timeouts: report.timeouts as u64,
                duplicates: report.duplicates as u64,
                stale: report.stale as u64,
                invalid: report.invalid_replies as u64,
                evictions: report.evictions.len() as u64,
            };
            return (journal.to_jsonl(), aggregator.render(), counts, aggregator);
        }
        now += 1_000;
    }
    panic!("instrumented run did not finish");
}

#[test]
fn live_metrics_match_the_degradation_report_exactly() {
    // A ghost session forces the full degraded lifecycle: timeouts,
    // retries, and an eviction, all without randomness.
    let (journal, exposition, report, agg) = instrumented_run(3, Some(2), 7);
    assert!(report.offers > 0 && report.retries > 0 && report.evictions == 1);
    for (name, expected) in [
        ("service.offer", report.offers),
        ("service.retry", report.retries),
        ("service.timeout", report.timeouts),
        ("service.duplicate", report.duplicates),
        ("service.stale", report.stale),
        ("service.invalid_reply", report.invalid),
        ("service.evicted", report.evictions),
    ] {
        assert_eq!(
            agg.counter_value(name),
            expected,
            "{name} must equal the DegradationReport, exposition:\n{exposition}"
        );
    }
    // The rendered exposition carries the same numbers the accessor reads.
    let lines = parse_exposition(&exposition).expect("exposition parses");
    let offer_line = lines
        .iter()
        .find(|l| l.family == "oes_counter" && l.label("name") == Some("service.offer"))
        .expect("offer counter rendered");
    assert_eq!(offer_line.value, report.offers as f64);
    // And the journal saw the same events the aggregate folded.
    assert!(journal.contains("\"name\":\"service.evicted\""));
}

#[test]
fn same_seed_runs_are_byte_identical_journals_and_expositions() {
    let (journal_a, exposition_a, report_a, _) = instrumented_run(3, Some(2), 42);
    let (journal_b, exposition_b, report_b, _) = instrumented_run(3, Some(2), 42);
    assert_eq!(report_a, report_b);
    assert_eq!(journal_a, journal_b, "same seed, same journal bytes");
    assert_eq!(exposition_a, exposition_b, "same seed, same /metrics body");
    assert!(
        journal_a.contains("\"trace\":"),
        "trace ids must reach the journal"
    );

    // A different trace seed changes journal bytes (trace ids differ) but
    // not the aggregate: metrics are trace-blind.
    let (journal_c, exposition_c, report_c, _) = instrumented_run(3, Some(2), 43);
    assert_eq!(report_a, report_c, "trace seed must not affect protocol");
    assert_ne!(journal_a, journal_c, "trace seed reaches journal bytes");
    assert_eq!(exposition_a, exposition_c, "metrics ignore trace ids");
}

#[test]
fn watchdog_trips_on_stalled_offers_and_recovers_on_progress() {
    let mut game = build(1);
    let aggregator = Arc::new(AggregatingRecorder::new(1));
    let telemetry = Telemetry::new(aggregator.clone());
    let mut config = ServiceConfig::default();
    // Long offer deadline so nothing retries or evicts; short stall budget
    // so the watchdog is what reacts.
    config.session.offer_timeout = Duration::from_secs(10);
    config.stall_budget_us = 50_000;
    let mut client = make_client(&game, 0);
    let mut service = CoordinatorService::new(&mut game, config, telemetry);
    let health = Arc::new(HealthState::new());
    service.set_health(Arc::clone(&health));

    let (client_end, server_end) = loopback_pair(PIPE);
    service.accept(Box::new(server_end));
    client.connect(Box::new(client_end), 0);
    client.poll(0); // sends Attach
    service.poll(0); // binds the session, pumps the first offer
    assert!(!service.stalled());
    assert!(health.is_ready(), "attached and in budget: ready");

    // The client goes quiet: the offer stays in flight with no progress.
    service.poll(20_000);
    assert!(!service.stalled(), "still inside the budget");
    service.poll(60_000);
    assert!(service.stalled(), "no apply progress past the budget");
    assert!(!health.is_ready());
    assert_eq!(health.unready_reason().unwrap_or(""), exp_stall_reason());
    assert_eq!(health.stall_count(), 1);
    assert_eq!(aggregator.counter_value("service.admin.stall"), 1);

    // The client wakes up and answers; the applied update recovers
    // readiness.
    client.poll(70_000);
    service.poll(70_000);
    assert!(!service.stalled(), "apply progress clears the stall");
    assert!(health.is_ready());
    assert_eq!(health.stall_count(), 1, "recovery is not a second trip");
    assert_eq!(aggregator.counter_value("service.admin.recover"), 1);
}

fn exp_stall_reason() -> &'static str {
    "stalled: no apply progress within budget"
}

#[test]
fn admin_surface_answers_over_real_tcp() {
    use std::io::{Read, Write};

    let game_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let admin_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let game_addr = game_listener.local_addr().unwrap();
    let admin_addr = admin_listener.local_addr().unwrap();

    let health = Arc::new(HealthState::new());
    let aggregator = Arc::new(AggregatingRecorder::new(4));
    let telemetry = Telemetry::new(aggregator.clone());
    let health_for_server = Arc::clone(&health);
    let aggregator_for_server = Arc::clone(&aggregator);
    let server = std::thread::spawn(move || {
        let mut game = build(4);
        let mut admin = AdminServer::new(
            health_for_server,
            aggregator_for_server,
            Telemetry::disabled(),
        );
        let mut config = ServiceConfig::default();
        config.session.max_updates = 2_000;
        oes::service::serve_tcp_with_admin(
            &mut game,
            config,
            telemetry,
            &game_listener,
            &admin_listener,
            &mut admin,
            Duration::from_micros(200),
        )
    });

    let probe = |path: &str| -> String {
        let mut sock = connect_retry(admin_addr);
        sock.write_all(format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes())
            .unwrap();
        let mut body = String::new();
        sock.read_to_string(&mut body).unwrap();
        body
    };

    let probe_head = |path: &str| -> String {
        let mut sock = connect_retry(admin_addr);
        sock.write_all(format!("HEAD {path} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes())
            .unwrap();
        let mut body = String::new();
        sock.read_to_string(&mut body).unwrap();
        body
    };

    // Before any client attaches: live but not ready.
    assert!(probe("/healthz").starts_with("HTTP/1.1 200"));
    // HEAD answers with the GET's headers and no body (RFC 9110 §9.3.2):
    // the content-length advertises the suppressed body so probes that
    // HEAD-check before GET see truthful sizes.
    let head = probe_head("/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(
        head.to_ascii_lowercase().contains("content-length:"),
        "{head}"
    );
    assert!(
        head.ends_with("\r\n\r\n"),
        "HEAD must carry no body: {head:?}"
    );
    let not_ready = probe("/readyz");
    assert!(not_ready.starts_with("HTTP/1.1 503"), "{not_ready}");
    assert!(not_ready.contains("no attached sessions"), "{not_ready}");

    let template = build(4);
    let server_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let server_done_for_fleet = Arc::clone(&server_done);
    let fleet = std::thread::spawn(move || {
        let clock = oes::telemetry::MonotonicClock::new();
        let mut sessions: Vec<ClientSession> =
            (0..4).map(|olev| make_client(&template, olev)).collect();
        for session in &mut sessions {
            let stream = connect_retry(game_addr);
            session.connect(
                Box::new(oes::service::tcp_stream(stream).unwrap()),
                oes::telemetry::Clock::now_micros(&clock),
            );
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        // The run is over when every session saw its Bye — or, if one
        // missed it (a reconnect racing the drain), when the server loop
        // has returned; without the flag a straggler would retry-connect
        // against a dead listener until the deadline.
        while sessions.iter().any(|s| !s.is_done() && !s.is_failed())
            && !server_done_for_fleet.load(std::sync::atomic::Ordering::Relaxed)
            && std::time::Instant::now() < deadline
        {
            let now = oes::telemetry::Clock::now_micros(&clock);
            for session in &mut sessions {
                if !session.is_done() {
                    session.poll(now);
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    });

    // Once a session attaches, /readyz flips to 200 and /metrics serves a
    // parseable exposition with live service counters. If the run finishes
    // first (it is legitimately fast), the probes are skipped — liveness
    // and readiness semantics were already asserted above.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while std::time::Instant::now() < deadline && !server.is_finished() {
        if probe("/readyz").starts_with("HTTP/1.1 200") {
            let metrics = probe("/metrics");
            assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
            let body = metrics.split("\r\n\r\n").nth(1).unwrap_or("");
            let lines = parse_exposition(body).expect("served exposition parses");
            assert!(
                lines
                    .iter()
                    .any(|l| l.label("name") == Some("service.attach")),
                "live metrics must include the attach counter:\n{body}"
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let outcome = server.join().unwrap().expect("clean TCP run");
    server_done.store(true, std::sync::atomic::Ordering::Relaxed);
    fleet.join().unwrap();
    assert!(outcome.updates() > 0);
    assert!(!health.is_live(), "liveness drops when the loop returns");
    assert!(aggregator.counter_value("service.offer") > 0);
}

fn connect_retry(addr: std::net::SocketAddr) -> std::net::TcpStream {
    for _ in 0..5_000 {
        if let Ok(sock) = std::net::TcpStream::connect(addr) {
            return sock;
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    panic!("TCP connect kept failing at {addr}");
}

/// Satellite claim: a slow-loris client — bytes trickling in forever,
/// request never completing — cannot hold an admin conn slot past the
/// request-completion deadline. The trickle is produced by a real
/// [`ChaosProxy`] in raw-byte mode fronting the admin surface, and a
/// fresh well-behaved probe is still served after the reap.
#[test]
fn slow_loris_against_the_admin_port_is_reaped() {
    use oes::service::{ByteStream, ChaosConfig, ChaosProxy};

    let aggregator = Arc::new(AggregatingRecorder::new(4));
    let telemetry = Telemetry::new(aggregator.clone());
    let mut admin = AdminServer::new(Arc::new(HealthState::new()), aggregator.clone(), telemetry)
        .with_idle_timeout_us(200);

    // One byte per pump: the ~40-byte request cannot complete within the
    // 200 µs deadline at one pump per 10 µs.
    let cfg = ChaosConfig {
        raw_bytes: true,
        slowloris_bytes_per_pump: 1,
        ..ChaosConfig::default()
    };
    let (mut proxy, mut client_end, server_end) = ChaosProxy::new(cfg, PIPE);
    admin.accept(Box::new(server_end));
    client_end
        .write_some(b"GET /healthz HTTP/1.1\r\nhost: loris\r\n\r\n")
        .unwrap();
    assert_eq!(admin.open_conns(), 1);

    let mut reaped_at = None;
    for t in (0..=600).step_by(10) {
        proxy.pump(t);
        admin.poll(t);
        if admin.open_conns() == 0 {
            reaped_at = Some(t);
            break;
        }
    }
    let reaped_at = reaped_at.expect("slow-loris conn must be reaped");
    assert!(reaped_at >= 200, "deadline honored, not an early cut");
    assert_eq!(aggregator.counter_value("service.admin.idle_timeout"), 1);
    // No response ever went back down the trickled connection.
    let mut buf = [0u8; 256];
    assert!(matches!(client_end.read_some(&mut buf), Ok(0) | Err(_)));

    // The slot is free again: an honest probe is answered in one poll.
    let (mut probe, server_end) = loopback_pair(PIPE);
    admin.accept(Box::new(server_end));
    probe
        .write_some(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    admin.poll(1_000);
    let n = probe.read_some(&mut buf).unwrap();
    let response = std::str::from_utf8(&buf[..n]).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
}
