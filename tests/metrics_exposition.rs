//! Exposition format properties: escaping round-trips, deterministic
//! ordering, and shard-count invariance of the rendered `/metrics` body.
//!
//! The exposition is consumed by scrapers and diffed byte-for-byte in
//! tests and CI, so its format carries real contracts:
//!
//! - **Escaping is total.** Any event name and any constant-label value —
//!   quotes, backslashes, newlines, unicode — renders to a line that
//!   [`parse_exposition`] reads back verbatim.
//! - **Rendering is deterministic.** Families and names emit in sorted
//!   order, so equal contents mean equal bytes regardless of insertion
//!   order, and the shard count (a concurrency knob) never leaks into the
//!   rendering.

use std::sync::Arc;

use oes::telemetry::{parse_exposition, AggregatingRecorder, Telemetry};
use proptest::prelude::*;

/// Event names are `&'static str` by design (they are compile-time
/// constants in production); the property tests leak their generated
/// names to get the same lifetime. A few bytes per case, test-only.
fn leak(name: String) -> &'static str {
    Box::leak(name.into_boxed_str())
}

proptest! {
    #[test]
    fn gauge_names_round_trip_any_escaping(
        name in "[\\x00-\\x7F]{1,24}",
        value in -1.0e12f64..1.0e12,
    ) {
        let recorder = Arc::new(AggregatingRecorder::new(1));
        let telemetry = Telemetry::new(recorder.clone());
        let static_name = leak(name.clone());
        telemetry.gauge(static_name, -1, value);
        let body = recorder.render();
        let lines = parse_exposition(&body)
            .unwrap_or_else(|| panic!("rendered exposition must parse:\n{body}"));
        let gauge = lines
            .iter()
            .find(|l| l.family == "oes_gauge")
            .expect("one gauge rendered");
        prop_assert_eq!(gauge.label("name"), Some(name.as_str()));
        prop_assert!(
            (gauge.value - value).abs() <= value.abs() * 1e-12,
            "value {} survived as {}", value, gauge.value
        );
    }

    #[test]
    fn constant_label_values_round_trip_any_escaping(
        key in "[a-z][a-z0-9_]{0,8}",
        label_value in "\\PC{0,16}",
        delta in 1u64..1_000_000,
    ) {
        let recorder = Arc::new(AggregatingRecorder::with_labels(
            2,
            vec![(key.clone(), label_value.clone())],
        ));
        let telemetry = Telemetry::new(recorder.clone());
        telemetry.counter("service.offer", -1, delta);
        let body = recorder.render();
        let lines = parse_exposition(&body)
            .unwrap_or_else(|| panic!("rendered exposition must parse:\n{body}"));
        let counter = lines
            .iter()
            .find(|l| l.family == "oes_counter")
            .expect("one counter rendered");
        prop_assert_eq!(counter.label("name"), Some("service.offer"));
        prop_assert_eq!(counter.label(key.as_str()), Some(label_value.as_str()));
        prop_assert_eq!(counter.value, delta as f64);
    }

    #[test]
    fn rendering_is_invariant_to_shard_count_and_insertion_order(
        shards in 1usize..17,
        seed in 0u64..1_000,
    ) {
        // The same single-threaded event sequence, recorded into
        // differently-sharded aggregators, must render byte-identically —
        // and so must a permuted insertion order of distinct names.
        let reference = Arc::new(AggregatingRecorder::new(1));
        let sharded = Arc::new(AggregatingRecorder::new(shards));
        let names: [&'static str; 4] =
            ["service.offer", "service.retry", "engine.update", "net.drop"];
        for (i, recorder) in [reference.clone(), sharded.clone()].into_iter().enumerate() {
            let telemetry = Telemetry::new(recorder);
            // Rotate the emission order per recorder; totals are equal.
            for k in 0..names.len() {
                let name = names[(k + i + seed as usize) % names.len()];
                telemetry.counter(name, -1, 1 + seed % 5);
                telemetry.histogram(name, -1, (seed % 97) as f64);
            }
        }
        prop_assert_eq!(reference.render(), sharded.render());
    }
}

#[test]
fn histogram_buckets_render_cumulative_ascending_with_inf_last() {
    let recorder = Arc::new(AggregatingRecorder::new(2));
    let telemetry = Telemetry::new(recorder.clone());
    for value in [0.5, 3.0, 3.0, 1e12] {
        telemetry.histogram("service.latency", -1, value);
    }
    let body = recorder.render();
    let lines = parse_exposition(&body).expect("exposition parses");
    let buckets: Vec<_> = lines
        .iter()
        .filter(|l| l.family == "oes_histogram_bucket")
        .collect();
    assert!(buckets.len() >= 2);
    assert_eq!(
        buckets.last().unwrap().label("le"),
        Some("+Inf"),
        "+Inf closes the bucket ladder"
    );
    let counts: Vec<f64> = buckets.iter().map(|l| l.value).collect();
    assert!(
        counts.windows(2).all(|w| w[0] <= w[1]),
        "bucket counts are cumulative: {counts:?}"
    );
    assert_eq!(*counts.last().unwrap(), 4.0, "+Inf holds every sample");
    let count = lines
        .iter()
        .find(|l| l.family == "oes_histogram_count")
        .unwrap();
    let sum = lines
        .iter()
        .find(|l| l.family == "oes_histogram_sum")
        .unwrap();
    assert_eq!(count.value, 4.0);
    assert!((sum.value - (0.5 + 3.0 + 3.0 + 1e12)).abs() < 1e-3);
}
