//! Differential and telemetry guarantees of the discrete-event traffic
//! engine, driven from the co-simulation level:
//!
//! - **Seeded differential suite** — ten seeded random grid co-simulations
//!   run in both [`StepMode`]s; vehicle kinematics, detector occupancy and
//!   touch counts, trip ledgers, per-hour received energy, and
//!   delivered-energy totals must be bit-equal at every tick boundary
//!   (the σ = 0 half of the tolerance contract in `ARCHITECTURE.md`).
//! - **Signal-phase boundaries** — phase durations that land exactly on
//!   tick boundaries, straddle them, or carry sub-tick offsets all settle
//!   to the same bits in both engines.
//! - **Journal stability** — same-seed event-driven runs emit
//!   byte-identical telemetry journals, and the `sim.event.*`
//!   instrumentation actually fires.

use std::sync::Arc;

use oes::telemetry::{count_events, JournalRecorder, Telemetry};
use oes::traffic::{
    shortest_path, EnergyModel, EventSimulation, GridNetworkBuilder, HourlyCounts, PoissonArrivals,
    RoadNetwork, SignalPlan, Simulation, SimulationConfig, SpanDetector, StepMode, VehicleParams,
};
use oes::units::{Meters, MetersPerSecond, Seconds, SectionId, StateOfCharge};
use oes::wpt::{ChargingSection, ChargingSpan, CoSimulation, OlevSpec};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded random grid co-simulation with a σ = 0 fleet (the regime the
/// cross-engine contract covers): randomized lattice size and signal
/// timing, seeded southeast OD routes, Poisson demand plus a queued
/// fleet, detectors and charging spans mid-route.
fn cosim_scenario(seed: u64) -> CoSimulation {
    let mut stream = seed;
    let dim = 4 + (splitmix64(&mut stream) % 3) as usize;
    let green = 20.0 + (splitmix64(&mut stream) % 28) as f64;
    let red = 14.0 + (splitmix64(&mut stream) % 22) as f64;
    let grid = GridNetworkBuilder::new()
        .size(dim, dim)
        .lanes(2)
        .signal(Seconds::new(green), Seconds::new(red))
        .seed(seed)
        .build();
    let mut draw = |bound: usize| (splitmix64(&mut stream) % bound as u64) as usize;
    let mut routes = Vec::new();
    while routes.len() < 12 {
        let r0 = draw(dim - 1);
        let c0 = draw(dim - 1);
        let r1 = r0 + 1 + draw(dim - 1 - r0);
        let c1 = c0 + 1 + draw(dim - 1 - c0);
        let route = shortest_path(grid.network(), grid.node_at(r0, c0), grid.node_at(r1, c1))
            .expect("southeast OD pairs are routable");
        routes.push(route);
    }
    let mut sim = grid.sim;
    for (k, route) in routes.iter().take(2).enumerate() {
        sim.add_detector(SpanDetector::new(
            format!("ev-span-{k}"),
            route[route.len() / 2],
            Meters::new(10.0),
            Meters::new(150.0),
        ));
    }
    for (i, route) in routes.iter().take(2).enumerate() {
        sim.add_demand(
            PoissonArrivals::new(
                HourlyCounts::new(vec![500 + 150 * i as u32]),
                seed.wrapping_mul(3).wrapping_add(i as u64),
            ),
            route.clone(),
            VehicleParams::deterministic(),
        );
    }
    for i in 0..40 {
        sim.queue_vehicle(
            routes[i % routes.len()].clone(),
            VehicleParams::deterministic(),
        );
    }
    let mut co = CoSimulation::new(
        sim,
        EnergyModel::chevy_spark_ev(),
        OlevSpec::chevy_spark_default(),
        0.5,
        StateOfCharge::saturating(0.5),
        seed ^ 0xc0ff_ee,
    );
    for (k, route) in routes.iter().take(2).enumerate() {
        co.add_span(ChargingSpan {
            edge: route[route.len() / 2],
            start: Meters::new(10.0),
            end: Meters::new(150.0),
            section: ChargingSection::paper_default(SectionId(k)),
        });
    }
    co
}

/// Full observable co-simulation state at a tick boundary.
fn assert_cosims_equal(seed: u64, tick: usize, a: &CoSimulation, b: &CoSimulation) {
    let veh = |co: &CoSimulation| {
        co.traffic()
            .vehicles()
            .map(|v| {
                (
                    v.id.0,
                    v.route_index,
                    v.lane,
                    v.position.value().to_bits(),
                    v.speed.value().to_bits(),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(
        veh(a),
        veh(b),
        "seed {seed} tick {tick}: vehicle states diverge"
    );
    let det = |co: &CoSimulation| {
        co.traffic()
            .detectors()
            .iter()
            .map(|d| (d.total_occupancy().value().to_bits(), d.vehicle_touches()))
            .collect::<Vec<_>>()
    };
    assert_eq!(det(a), det(b), "seed {seed} tick {tick}: detectors diverge");
    assert_eq!(
        a.total_received().value().to_bits(),
        b.total_received().value().to_bits(),
        "seed {seed} tick {tick}: delivered energy diverges"
    );
    assert_eq!(
        a.received_per_hour(),
        b.received_per_hour(),
        "seed {seed} tick {tick}: hourly energy diverges"
    );
    assert_eq!(
        a.completed_trips(),
        b.completed_trips(),
        "seed {seed} tick {tick}: trip ledgers diverge"
    );
}

#[test]
fn ten_seeded_cosims_agree_in_both_step_modes() {
    let mut spawned = 0;
    let mut energy_seen = false;
    for seed in 1..=10u64 {
        let mut ticked = cosim_scenario(seed);
        let mut event = cosim_scenario(seed);
        event.set_step_mode(StepMode::EventDriven);
        assert_eq!(event.step_mode(), StepMode::EventDriven);
        assert_eq!(ticked.step_mode(), StepMode::Ticked);
        for tick in 0..240 {
            ticked.step();
            event.step();
            assert_cosims_equal(seed, tick, &ticked, &event);
        }
        spawned += ticked.traffic().spawned();
        energy_seen |= ticked.total_received().value() > 0.0;
    }
    assert!(spawned > 0, "suite must spawn traffic");
    assert!(energy_seen, "at least one seed must deliver charge");
}

#[test]
fn step_mode_round_trips_preserve_bit_identity() {
    // Ticked → event → ticked mid-run lands on the same bits as a run
    // that never switched.
    let mut reference = cosim_scenario(3);
    let mut switched = cosim_scenario(3);
    for _ in 0..80 {
        reference.step();
        switched.step();
    }
    switched.set_step_mode(StepMode::EventDriven);
    for _ in 0..80 {
        reference.step();
        switched.step();
    }
    switched.set_step_mode(StepMode::Ticked);
    assert_eq!(switched.step_mode(), StepMode::Ticked);
    for tick in 160..240 {
        reference.step();
        switched.step();
        assert_cosims_equal(3, tick, &reference, &switched);
    }
}

/// A two-edge corridor with a mid-corridor signal and σ = 0 Poisson
/// demand — the smallest scenario where phase timing decides everything.
fn boundary_sim(green: f64, red: f64, offset: f64) -> Simulation {
    let mut net = RoadNetwork::new();
    let a = net.add_node();
    let b = net.add_node();
    let c = net.add_node();
    let e1 = net
        .add_edge(a, b, Meters::new(300.0), MetersPerSecond::new(12.0))
        .unwrap();
    let e2 = net
        .add_edge(b, c, Meters::new(300.0), MetersPerSecond::new(12.0))
        .unwrap();
    let mut sim = Simulation::new(net, SimulationConfig::default(), 9);
    sim.add_signal(
        b,
        SignalPlan::new(Seconds::new(green), Seconds::new(red), Seconds::new(offset)),
    );
    sim.add_demand(
        PoissonArrivals::new(HourlyCounts::new(vec![700]), 9),
        vec![e1, e2],
        VehicleParams::deterministic(),
    );
    sim
}

#[test]
fn signal_phase_boundaries_are_bit_exact_in_both_engines() {
    // Tick-aligned phases, phases that straddle tick boundaries, and
    // sub-tick offsets: the event engine's flip wakes and green-capped
    // cruise horizons must floor to exactly the ticks the synchronous
    // engine experiences.
    for (green, red, offset) in [
        (24.0, 12.0, 0.0),
        (24.5, 11.25, 0.0),
        (30.0, 30.0, 0.37),
        (7.0, 3.0, 0.5),
    ] {
        let mut ticked = boundary_sim(green, red, offset);
        let mut event = EventSimulation::new(boundary_sim(green, red, offset));
        let mut peak_sleeping = 0;
        for tick in 0..400 {
            ticked.step();
            event.step();
            event.flush();
            let state = |sim: &Simulation| {
                sim.vehicles()
                    .map(|v| {
                        (
                            v.id.0,
                            v.route_index,
                            v.lane,
                            v.position.value().to_bits(),
                            v.speed.value().to_bits(),
                        )
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                state(&ticked),
                state(event.traffic()),
                "green {green} red {red} offset {offset} tick {tick}"
            );
            peak_sleeping = peak_sleeping.max(event.sleeping_count());
        }
        assert!(ticked.spawned() > 0, "corridor must spawn traffic");
        assert_eq!(
            event.sleeping_count() + event.awake_count(),
            ticked.active_count(),
            "green {green} red {red} offset {offset}: fleet accounting"
        );
        assert!(
            peak_sleeping > 0,
            "green {green} red {red} offset {offset}: sleep must engage"
        );
    }
}

/// A journaled event-driven grid run with σ = 0 demand, so both sleep
/// regimes (parked queues, green-capped cruises) actually engage.
fn event_journal(seed: u64) -> String {
    let journal = Arc::new(JournalRecorder::new("event-golden", seed));
    let grid = GridNetworkBuilder::new().size(4, 4).seed(seed).build();
    let routes: Vec<_> = [((0, 0), (3, 3)), ((0, 1), (3, 2))]
        .into_iter()
        .map(|(from, to)| {
            shortest_path(
                grid.network(),
                grid.node_at(from.0, from.1),
                grid.node_at(to.0, to.1),
            )
            .expect("southeast OD pairs are routable")
        })
        .collect();
    let mut sim = grid.sim;
    for (i, route) in routes.into_iter().enumerate() {
        sim.add_demand(
            PoissonArrivals::new(
                HourlyCounts::new(vec![900 - 200 * i as u32]),
                seed.wrapping_add(i as u64),
            ),
            route,
            VehicleParams::deterministic(),
        );
    }
    sim.set_telemetry(Telemetry::new(journal.clone()));
    let mut ev = EventSimulation::new(sim);
    for _ in 0..180 {
        ev.step();
    }
    journal.to_jsonl()
}

#[test]
fn same_seed_event_journals_are_byte_identical_and_cover_the_engine() {
    let first = event_journal(31);
    let second = event_journal(31);
    assert_eq!(
        first, second,
        "same-seed event journals must match byte-for-byte"
    );
    // The event namespace actually fires: the per-tick gauge, plus sleep
    // and wake traffic from the signalized queues (this scenario's σ > 0
    // fleet exercises the parked regime; cruise is σ = 0 only).
    assert!(count_events(&first, "sim.event.sleeping") > 0);
    assert!(count_events(&first, "sim.event.sleeps") > 0);
    assert!(count_events(&first, "sim.event.wakeups") > 0);
    assert!(count_events(&first, "sim.event.scheduled") > 0);
    // A different seed is visible in the journal.
    let other = event_journal(32);
    assert_ne!(first, other);
}
