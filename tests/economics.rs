//! Cross-crate economic pipeline tests: dispatch → deficiency → settlement,
//! the OLEV overlay's dollar cost, and the mechanism-value comparison at
//! integration scale.

use oes::game::{compare_regimes, ComparisonScenario};
use oes::grid::{
    dispatch, nyiso_like_fleet, overlay_ev_load, settle_day, GridOperator, OperatorConfig,
};
use oes::units::{Hours, Kilowatts, Megawatts};

/// The full money story of Section III: an unforecast OLEV fleet makes the
/// grid's day measurably more expensive, and the cost lands in the
/// real-time/ancillary buckets, not day-ahead.
#[test]
fn olev_overlay_costs_real_money_in_the_right_bucket() {
    let config = OperatorConfig::nyiso_like();
    let day = GridOperator::new(config.clone(), 42).simulate_day();
    let olev_profile: Vec<f64> = (0..24)
        .map(|h| if (7..21).contains(&h) { 60.0 } else { 5.0 })
        .collect();
    let loaded = overlay_ev_load(&day, &olev_profile, &config);

    let s_base = settle_day(&day, 30.0, 250.0);
    let s_loaded = settle_day(&loaded, 30.0, 250.0);
    assert_eq!(
        s_base.day_ahead, s_loaded.day_ahead,
        "day-ahead must stay blind"
    );
    let added = s_loaded.total().value() - s_base.total().value();
    assert!(
        added > 0.0,
        "unforecast load must cost money, added {added}"
    );
    // The added cost is entirely balancing + reserves.
    let added_rt = s_loaded.real_time.value() - s_base.real_time.value();
    let added_anc = s_loaded.ancillary.value() - s_base.ancillary.value();
    assert!((added - (added_rt + added_anc)).abs() < 1e-6);
}

/// Ramp-constrained dispatch cannot follow the simulated day's sharpest
/// swings exactly where deficiency spikes — the physical story behind the
/// ancillary prices the game's β rides on.
#[test]
fn dispatch_follows_the_simulated_day_mostly() {
    let day = GridOperator::new(OperatorConfig::nyiso_like(), 42).simulate_day();
    let demand: Vec<Megawatts> = day
        .points()
        .iter()
        .map(|p| p.integrated_load / Hours::new(1.0))
        .collect();
    let plan = dispatch(&nyiso_like_fleet(), &demand, 24.0 / demand.len() as f64);
    // The fleet tracks the diurnal ramp fine at 5-minute resolution...
    let shortfall_fraction = plan.shortfall_intervals() as f64 / demand.len() as f64;
    assert!(
        shortfall_fraction < 0.05,
        "fleet lost the load {shortfall_fraction}"
    );
    // ...and the day costs millions, like a real mid-size operator's.
    assert!(plan.total_cost().value() > 1.0e6);
}

/// The mechanism-value comparison holds at a larger scale too.
#[test]
fn mechanism_beats_free_for_all_at_scale() {
    let cmp = compare_regimes(&ComparisonScenario {
        sections: 50,
        section_capacity: Kilowatts::new(25.0),
        olevs: 30,
        olev_p_max: Kilowatts::new(60.0),
        weight: 1.0,
        beta: 20.0,
        eta: 0.9,
    })
    .unwrap();
    assert!(cmp.price_of_anarchy_gap().abs() < 1e-2);
    assert!(cmp.mechanism_value() > 0.0);
    assert!(
        cmp.free_for_all.congestion > 1.0,
        "free-for-all must overload"
    );
    assert!(cmp.nonlinear.congestion < 1.0);
    // (The linear regime's welfare is measured against its own, cheaper cost
    // function, so it is not comparable to the nonlinear optimum; its
    // distinguishing failure is the load imbalance, asserted elsewhere.)
}
