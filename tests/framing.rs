//! Property tests for the wire framing layer: the [`FrameDecoder`] must
//! never panic, never wedge, and always resynchronize — no matter what
//! bytes the network (or the chaos proxy) throws at it. Decode failures
//! above the framing layer must surface as the typed
//! [`GameError::MalformedFrame`] protocol violation, never a panic.

use oes::game::GameError;
use oes::service::decode_client_frame;
use oes::units::{Kilowatts, OlevId};
use oes::wpt::framing::{frame_tokens, FrameDecoder};
use oes::wpt::v2i::{OlevMessage, V2iFrame};
use oes::wpt::wire::{encode, Token};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Pushes `bytes` split at `cuts` and pulls the decoder dry, panicking on
/// any violation of the bounded-progress guarantee. Returns the decoded
/// token frames in order.
fn drive(decoder: &mut FrameDecoder, bytes: &[u8], cuts: &[usize]) -> Vec<Vec<Token>> {
    let mut frames = Vec::new();
    let mut start = 0;
    let mut boundaries: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
    boundaries.push(bytes.len());
    boundaries.sort_unstable();
    for end in boundaries {
        decoder.push(&bytes[start..end.max(start)]);
        start = start.max(end);
        // Every Err and every Ok(Some) consumes at least one buffered byte,
        // so the decoder can never yield more results than bytes pushed.
        let mut fuel = end + 1;
        loop {
            match decoder.next_frame() {
                Ok(Some(tokens)) => frames.push(tokens),
                Ok(None) => break,
                Err(_) => {}
            }
            fuel = fuel
                .checked_sub(1)
                .expect("decoder yielded more results than bytes pushed: no progress");
        }
    }
    frames
}

fn arb_token() -> impl Strategy<Value = Token> {
    prop_oneof![
        any::<bool>().prop_map(Token::Bool),
        any::<u64>().prop_map(Token::U64),
        any::<i64>().prop_map(Token::I64),
        any::<f64>().prop_map(Token::F64),
        ".{0,12}".prop_map(Token::Str),
        (0usize..8).prop_map(Token::Seq),
        (0u32..8).prop_map(Token::Variant),
        Just(Token::Unit),
    ]
}

fn sample_frame(olev: usize, seq: u64, total: f64) -> Vec<u8> {
    let msg = V2iFrame::new(
        seq,
        OlevMessage::PowerRequest {
            id: OlevId(olev),
            total: Kilowatts::new(total),
        },
    );
    frame_tokens(&encode(&msg).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary garbage, arbitrarily chunked: no panic, no livelock.
    #[test]
    fn arbitrary_byte_streams_never_panic_or_wedge(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in proptest::collection::vec(any::<usize>(), 0..16),
    ) {
        let mut decoder = FrameDecoder::new();
        drive(&mut decoder, &bytes, &cuts);
        prop_assert!(decoder.buffered() <= bytes.len());
    }

    /// Real frames survive any chunking: every split of the byte stream
    /// reassembles the same frames in the same order.
    #[test]
    fn chunking_never_loses_or_reorders_frames(
        specs in proptest::collection::vec((0usize..8, 0u64..1000, 0.0f64..50.0), 1..6),
        cuts in proptest::collection::vec(any::<usize>(), 0..24),
    ) {
        let mut wire = Vec::new();
        let mut expected = Vec::new();
        for (olev, seq, total) in &specs {
            wire.extend(sample_frame(*olev, *seq, *total));
            expected.push((*olev, *seq, *total));
        }
        let mut decoder = FrameDecoder::new();
        let frames = drive(&mut decoder, &wire, &cuts);
        prop_assert_eq!(frames.len(), expected.len());
        prop_assert_eq!(decoder.skipped_total(), 0);
        prop_assert_eq!(decoder.rejected_total(), 0);
        for (tokens, (olev, seq, total)) in frames.iter().zip(&expected) {
            let decoded: V2iFrame<OlevMessage> =
                oes::wpt::framing::decode_tokens(tokens).unwrap();
            prop_assert_eq!(decoded.seq, *seq);
            let OlevMessage::PowerRequest { id, total: t } = decoded.payload else {
                return Err(TestCaseError::fail("wrong payload shape"));
            };
            prop_assert_eq!(id.0, *olev);
            prop_assert_eq!(t.value().to_bits(), total.to_bits());
        }
    }

    /// A frame sandwiched in magic-free garbage is still recovered: the
    /// decoder skips the garbage (tallying it) and decodes the frame.
    #[test]
    fn frames_are_recovered_from_surrounding_garbage(
        prefix in proptest::collection::vec(0u8..0xE5, 0..64),
        suffix in proptest::collection::vec(0u8..0xE5, 0..64),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut wire = prefix.clone();
        wire.extend(sample_frame(3, 42, 17.5));
        wire.extend(&suffix);
        let mut decoder = FrameDecoder::new();
        let frames = drive(&mut decoder, &wire, &cuts);
        prop_assert_eq!(frames.len(), 1, "the intact frame must be recovered");
        prop_assert!(decoder.skipped_total() >= prefix.len() as u64);
    }

    /// Truncating a frame anywhere never panics; the partial bytes either
    /// sit waiting for more input or are skipped as damage — and an intact
    /// frame pushed afterwards with a fresh decoder always decodes.
    #[test]
    fn truncated_frames_never_panic(
        cut_at in 0usize..64,
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let frame = sample_frame(1, 7, 12.25);
        let cut_at = cut_at % frame.len();
        let mut decoder = FrameDecoder::new();
        let frames = drive(&mut decoder, &frame[..cut_at], &cuts);
        prop_assert!(frames.is_empty(), "a truncated frame must not decode");
        // The rest of the bytes complete the frame.
        let frames = drive(&mut decoder, &frame[cut_at..], &[]);
        prop_assert_eq!(frames.len(), 1);
    }

    /// Any single corrupted byte is detected: the frame is rejected or
    /// desynced (or, if the length field grew, held as incomplete) — never
    /// decoded as valid, never a panic.
    #[test]
    fn single_byte_corruption_never_yields_a_valid_frame(
        pos in 0usize..64,
        flip in 1u8..=255,
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut frame = sample_frame(2, 9, 33.0);
        let pos = pos % frame.len();
        frame[pos] ^= flip;
        let mut decoder = FrameDecoder::new();
        let frames = drive(&mut decoder, &frame, &cuts);
        prop_assert!(
            frames.is_empty(),
            "a damaged frame must never decode as valid"
        );
    }

    /// Structurally valid token streams that are not a service envelope
    /// decode to the typed protocol-violation error, never a panic.
    #[test]
    fn arbitrary_tokens_decode_to_typed_errors(
        tokens in proptest::collection::vec(arb_token(), 0..12),
    ) {
        match decode_client_frame(&tokens) {
            Ok(_) => {}
            Err(GameError::MalformedFrame { detail }) => prop_assert!(!detail.is_empty()),
            Err(other) => {
                return Err(TestCaseError::fail(format!(
                    "expected MalformedFrame, got {other:?}"
                )));
            }
        }
    }
}
