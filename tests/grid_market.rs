//! Property-based invariants of the grid-market substrate.

use oes::grid::{
    AncillaryMarket, Forecaster, GridOperator, MovingAverageForecaster, OperatorConfig, SupplyStack,
};
use oes::units::{MegawattHours, Megawatts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merit order: the clearing price never decreases with demand.
    #[test]
    fn clearing_price_is_monotone_in_demand(
        d1 in 0.0f64..8000.0,
        d2 in 0.0f64..8000.0,
    ) {
        let stack = SupplyStack::nyiso_like();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let p_lo = stack.clearing_price(Megawatts::new(lo));
        let p_hi = stack.clearing_price(Megawatts::new(hi));
        prop_assert!(p_lo <= p_hi);
    }

    /// Positive deficiency can only raise the LBMP; negative never changes it.
    #[test]
    fn deficiency_only_raises_lbmp(
        demand in 0.0f64..7000.0,
        deficiency in -300.0f64..300.0,
    ) {
        let stack = SupplyStack::nyiso_like();
        let base = stack.clearing_price(Megawatts::new(demand));
        let priced = stack.lbmp(Megawatts::new(demand), MegawattHours::new(deficiency), 1.0);
        if deficiency <= 0.0 {
            prop_assert_eq!(priced, base);
        } else {
            prop_assert!(priced >= base);
        }
    }

    /// Ancillary prices respond monotonically to scarcity.
    #[test]
    fn ancillary_prices_monotone_in_scarcity(
        demand in 4000.0f64..7000.0,
        s1 in 0.0f64..200.0,
        s2 in 0.0f64..200.0,
    ) {
        let market = AncillaryMarket::nyiso_like();
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let p_lo = market.price(Megawatts::new(demand), MegawattHours::new(lo));
        let p_hi = market.price(Megawatts::new(demand), MegawattHours::new(hi));
        prop_assert!(p_lo.ten_min_sync <= p_hi.ten_min_sync);
        prop_assert!(p_lo.regulation_capacity <= p_hi.regulation_capacity);
        prop_assert!(p_lo.regulation_movement <= p_hi.regulation_movement);
    }

    /// The moving-average forecast always lies within the range of its
    /// window.
    #[test]
    fn moving_average_is_within_window_range(
        history in prop::collection::vec(3000.0f64..7000.0, 1..50),
        window in 1usize..10,
    ) {
        let f = MovingAverageForecaster::new(window);
        let hist: Vec<MegawattHours> = history.iter().map(|&v| MegawattHours::new(v)).collect();
        let prediction = f.predict(&hist).value();
        let tail = &history[history.len().saturating_sub(window)..];
        let lo = tail.iter().fold(f64::INFINITY, |m, &v| m.min(v));
        let hi = tail.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        prop_assert!(prediction >= lo - 1e-9 && prediction <= hi + 1e-9);
    }

    /// The simulated day is internally consistent for any seed: deficiency
    /// is exactly integrated − forecast, and prices stay in the stack's
    /// range.
    #[test]
    fn simulated_day_is_consistent(seed in 0u64..50) {
        let day = GridOperator::new(OperatorConfig::nyiso_like(), seed).simulate_day();
        for p in day.points() {
            prop_assert!(
                (p.deficiency.value()
                    - (p.integrated_load.value() - p.forecast_load.value()))
                .abs()
                    < 1e-9
            );
            prop_assert!(p.lbmp.value() >= 12.52 && p.lbmp.value() <= 300.0);
            prop_assert!(p.ancillary.mean().value() >= 0.0);
        }
    }
}
