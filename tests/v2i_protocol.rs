//! Protocol-level tests for the V2I vocabulary and transport.
//!
//! Two layers are pinned here:
//!
//! - **Wire codec round-trips** — every [`OlevMessage`] and [`GridMessage`]
//!   variant, framed and bare, survives `encode` → `decode` unchanged, so
//!   the message vocabulary stays serializable as it evolves.
//! - **[`MessageBus`] invariants** — messages are never delivered before
//!   `sent_at + latency`, and delivery preserves FIFO order, for arbitrary
//!   interleavings of sends and clock advances.

use std::collections::VecDeque;

use oes::units::{Kilowatts, MetersPerSecond, OlevId, Seconds, StateOfCharge};
use oes::wpt::{decode, encode, GridMessage, MessageBus, OlevMessage, Token, V2iFrame};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn roundtrip<T>(value: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug,
{
    let tokens = encode(value).expect("encode");
    let back: T = decode(&tokens).expect("decode");
    assert_eq!(&back, value, "wire round-trip must be lossless");
}

#[test]
fn every_olev_message_variant_roundtrips() {
    roundtrip(&OlevMessage::Hello {
        id: OlevId(3),
        velocity: MetersPerSecond::new(26.8),
        soc: StateOfCharge::saturating(0.35),
        soc_required: StateOfCharge::saturating(0.8),
    });
    roundtrip(&OlevMessage::PowerRequest {
        id: OlevId(9),
        total: Kilowatts::new(17.25),
    });
    roundtrip(&OlevMessage::Goodbye { id: OlevId(0) });
}

#[test]
fn every_grid_message_variant_roundtrips() {
    roundtrip(&GridMessage::LaneInfo {
        sections: 12,
        capacity: Kilowatts::new(60.0),
    });
    roundtrip(&GridMessage::PaymentUpdate {
        id: OlevId(4),
        marginal_price: 0.031,
        allocated: Kilowatts::new(22.5),
    });
    roundtrip(&GridMessage::PaymentFunction {
        id: OlevId(1),
        loads_excl: vec![
            Kilowatts::new(10.0),
            Kilowatts::new(0.0),
            Kilowatts::new(37.5),
        ],
    });
}

#[test]
fn framed_messages_roundtrip_with_their_sequence_numbers() {
    roundtrip(&V2iFrame::new(
        42,
        OlevMessage::PowerRequest {
            id: OlevId(2),
            total: Kilowatts::new(9.5),
        },
    ));
    roundtrip(&V2iFrame::new(
        u64::MAX,
        GridMessage::PaymentFunction {
            id: OlevId(7),
            loads_excl: vec![Kilowatts::new(5.0)],
        },
    ));
}

#[test]
fn transparent_units_encode_as_bare_scalars() {
    // `#[serde(transparent)]` quantities must not add any framing: a payment
    // frame is readable by any peer that understands plain numbers.
    assert_eq!(
        encode(&Kilowatts::new(18.5)).expect("encode"),
        vec![Token::F64(18.5)]
    );
    assert_eq!(encode(&OlevId(7)).expect("encode"), vec![Token::U64(7)]);
}

#[test]
fn truncated_frames_are_rejected() {
    let mut tokens = encode(&OlevMessage::PowerRequest {
        id: OlevId(1),
        total: Kilowatts::new(3.0),
    })
    .expect("encode");
    tokens.pop();
    assert!(
        decode::<OlevMessage>(&tokens).is_err(),
        "truncated frame must not decode"
    );
}

proptest! {
    /// Any finite power request survives the wire bit-for-bit.
    #[test]
    fn power_requests_roundtrip_for_arbitrary_totals(
        id in any::<usize>(),
        total in proptest::num::f64::NORMAL | proptest::num::f64::ZERO,
        seq in any::<u64>(),
    ) {
        let frame = V2iFrame::new(seq, OlevMessage::PowerRequest {
            id: OlevId(id),
            total: Kilowatts::new(total),
        });
        let tokens = encode(&frame).expect("encode");
        let back: V2iFrame<OlevMessage> = decode(&tokens).expect("decode");
        prop_assert_eq!(back, frame);
    }

    /// Payment-function loads of any length survive the wire.
    #[test]
    fn payment_functions_roundtrip_for_arbitrary_fleets(
        id in any::<usize>(),
        loads in proptest::collection::vec(0.0f64..1e6, 0..32),
    ) {
        let message = GridMessage::PaymentFunction {
            id: OlevId(id),
            loads_excl: loads.into_iter().map(Kilowatts::new).collect(),
        };
        let tokens = encode(&message).expect("encode");
        let back: GridMessage = decode(&tokens).expect("decode");
        prop_assert_eq!(back, message);
    }

    /// The bus never delivers early and never reorders: for any interleaving
    /// of sends and clock advances, each message arrives only once the clock
    /// passes `sent_at + latency`, in exactly the order sent.
    #[test]
    fn message_bus_honors_latency_and_fifo(
        latency in 0.0f64..0.5,
        steps in proptest::collection::vec((0.0f64..0.2, any::<bool>()), 1..40),
    ) {
        let mut bus: MessageBus<OlevMessage> = MessageBus::new(Seconds::new(latency));
        let mut in_flight: VecDeque<(f64, usize)> = VecDeque::new();
        let mut next_id = 0usize;
        let mut delivered = Vec::new();

        let mut drain = |bus: &mut MessageBus<OlevMessage>,
                         in_flight: &mut VecDeque<(f64, usize)>,
                         delivered: &mut Vec<usize>|
         -> Result<(), TestCaseError> {
            while let Some(message) = bus.receive() {
                let (due, expected) =
                    in_flight.pop_front().expect("received more than was sent");
                prop_assert!(
                    bus.now().value() >= due - 1e-12,
                    "message {} delivered at {} before its due time {}",
                    expected, bus.now().value(), due
                );
                let OlevMessage::Goodbye { id } = message else {
                    return Err(TestCaseError::fail("unexpected message variant"));
                };
                prop_assert_eq!(id.0, expected, "delivery must be FIFO");
                delivered.push(id.0);
            }
            Ok(())
        };

        for (dt, send) in steps {
            bus.advance(Seconds::new(dt));
            if send {
                bus.send(OlevMessage::Goodbye { id: OlevId(next_id) });
                in_flight.push_back((bus.now().value() + latency, next_id));
                next_id += 1;
            }
            drain(&mut bus, &mut in_flight, &mut delivered)?;
        }

        // Let everything mature: nothing may be lost either.
        bus.advance(Seconds::new(latency + 1.0));
        drain(&mut bus, &mut in_flight, &mut delivered)?;
        prop_assert!(in_flight.is_empty(), "a matured message was never delivered");
        prop_assert_eq!(bus.in_flight(), 0);
        prop_assert_eq!(delivered, (0..next_id).collect::<Vec<_>>());
    }
}
