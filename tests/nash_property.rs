//! Property-based Nash/optimality tests on whole games: for random
//! scenarios, the converged schedule is a fixed point, no sampled deviation
//! is profitable, and no sampled feasible schedule has higher welfare.

use oes::game::{
    potential, GameBuilder, LogSatisfaction, NonlinearPricing, PowerSchedule, PricingPolicy,
    Satisfaction, UpdateOrder,
};
use oes::units::{Kilowatts, OlevId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    sections: usize,
    cap: f64,
    olevs: Vec<(f64, f64)>, // (p_max, weight)
    beta: f64,
    eta: f64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        2usize..8,
        10.0f64..60.0,
        prop::collection::vec((5.0f64..80.0, 0.2f64..3.0), 1..6),
        5.0f64..60.0,
        0.5f64..1.0,
    )
        .prop_map(|(sections, cap, olevs, beta, eta)| Scenario {
            sections,
            cap,
            olevs,
            beta,
            eta,
        })
}

fn build_and_run(s: &Scenario) -> oes::game::Game {
    let mut builder = GameBuilder::new()
        .sections(s.sections, Kilowatts::new(s.cap))
        .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
            s.beta,
        )))
        .eta(s.eta);
    for (p_max, weight) in &s.olevs {
        builder = builder.olevs_weighted(1, Kilowatts::new(*p_max), *weight);
    }
    let mut game = builder.build().expect("valid random scenario");
    game.run(UpdateOrder::RoundRobin, 30_000).expect("runs");
    game
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The converged state is a best-response fixed point.
    #[test]
    fn converged_state_is_a_fixed_point(s in scenario_strategy()) {
        let mut game = build_and_run(&s);
        for n in 0..game.olev_count() {
            let change = game.update_olev(n).expect("valid index");
            prop_assert!(change < 1e-4, "OLEV {n} still moves by {change}");
        }
    }

    /// No sampled unilateral deviation improves any OLEV's utility.
    #[test]
    fn sampled_deviations_are_unprofitable(
        s in scenario_strategy(),
        fractions in prop::collection::vec(0.0f64..1.0, 8),
    ) {
        let game = build_and_run(&s);
        let sats: Vec<Box<dyn Satisfaction>> = s
            .olevs
            .iter()
            .map(|(_, w)| Box::new(LogSatisfaction::new(*w)) as Box<dyn Satisfaction>)
            .collect();
        for (n, sat) in sats.iter().enumerate() {
            let id = OlevId(n);
            let current = potential::olev_utility(
                id, sat.as_ref(), game.cost(), game.caps(), game.schedule(),
            );
            for f in &fractions {
                // Deviate to requesting f·p_max, water-filled by the grid.
                let total = f * game.p_max()[n];
                let loads = game.schedule().loads_excluding(id);
                let alloc = game.scheduler().allocate(game.cost(), game.caps(), &loads, total);
                let mut deviated = game.schedule().clone();
                deviated.set_row(id, &alloc.shares);
                let utility = potential::olev_utility(
                    id, sat.as_ref(), game.cost(), game.caps(), &deviated,
                );
                prop_assert!(
                    utility <= current + 1e-6,
                    "OLEV {n} profits from f={f}: {utility} > {current}"
                );
            }
        }
    }

    /// No sampled feasible schedule beats the equilibrium's welfare
    /// (Theorem IV.1, sampled globally rather than via the solver).
    #[test]
    fn sampled_schedules_do_not_beat_equilibrium_welfare(
        s in scenario_strategy(),
        noise in prop::collection::vec(0.0f64..1.0, 48),
    ) {
        let game = build_and_run(&s);
        let w_star = game.welfare();
        let n = game.olev_count();
        let c = game.section_count();
        let sats = game.satisfactions();
        let mut idx = 0;
        let mut take = || {
            let v = noise[idx % noise.len()];
            idx += 1;
            v
        };
        for _ in 0..4 {
            let mut schedule = PowerSchedule::zeros(n, c);
            for row in 0..n {
                // A random feasible row: scaled so the total ≤ p_max.
                let raw: Vec<f64> = (0..c).map(|_| take()).collect();
                let sum: f64 = raw.iter().sum();
                let budget = take() * game.p_max()[row];
                let scale = if sum > 0.0 { budget / sum } else { 0.0 };
                let row_vals: Vec<f64> = raw.iter().map(|r| r * scale).collect();
                schedule.set_row(OlevId(row), &row_vals);
            }
            let w = potential::social_welfare(sats, game.cost(), game.caps(), &schedule);
            prop_assert!(
                w <= w_star + 1e-6,
                "sampled schedule beats equilibrium: {w} > {w_star}"
            );
        }
    }
}
