//! Property-based tests of the mechanism's core identities: the exact
//! potential property, payment unbiasedness, and water-filling invariants.

use oes::game::{
    greedy_fill, potential, water_level, waterfill, LinearPricing, LogSatisfaction,
    NonlinearPricing, OverloadPenalty, PowerSchedule, PricingPolicy, Satisfaction, Scheduler,
    SectionCost,
};
use oes::units::OlevId;
use proptest::prelude::*;

fn nl_cost(beta: f64, kappa: f64, eta: f64) -> SectionCost {
    SectionCost::new(
        PricingPolicy::Nonlinear(NonlinearPricing::paper_default(beta)),
        OverloadPenalty::new(kappa),
        eta,
    )
}

fn lin_cost(beta: f64) -> SectionCost {
    SectionCost::new(
        PricingPolicy::Linear(LinearPricing::paper_default(beta)),
        OverloadPenalty::new(0.15),
        0.9,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The water level solves Y(λ) = total for arbitrary loads.
    #[test]
    fn water_level_solves_y(
        loads in prop::collection::vec(0.0f64..100.0, 1..20),
        total in 0.0f64..500.0,
    ) {
        let lambda = water_level(&loads, total);
        let y: f64 = loads.iter().map(|&l| (lambda - l).max(0.0)).sum();
        prop_assert!((y - total).abs() < 1e-6 * total.max(1.0));
    }

    /// Water-filling conserves the total, never goes negative, and never
    /// raises a touched section above an untouched one.
    #[test]
    fn waterfill_invariants(
        loads in prop::collection::vec(0.0f64..100.0, 1..20),
        total in 0.0f64..500.0,
    ) {
        let shares = waterfill(&loads, total);
        let sum: f64 = shares.iter().sum();
        prop_assert!((sum - total).abs() < 1e-6 * total.max(1.0));
        let level = loads
            .iter()
            .zip(&shares)
            .filter(|(_, s)| **s > 1e-9)
            .map(|(l, s)| l + s)
            .fold(0.0f64, f64::max);
        for (l, s) in loads.iter().zip(&shares) {
            prop_assert!(*s >= 0.0);
            // Untouched sections were already at or above the water level.
            if *s <= 1e-9 && total > 0.0 {
                prop_assert!(*l >= level - 1e-6, "untouched {l} below level {level}");
            }
        }
    }

    /// Greedy filling also conserves the total and never allocates
    /// negatively, for both policies.
    #[test]
    fn greedy_fill_invariants(
        loads in prop::collection::vec(0.0f64..80.0, 1..16),
        total in 0.0f64..400.0,
        beta in 1.0f64..100.0,
    ) {
        let cost = lin_cost(beta);
        let caps = vec![60.0; loads.len()];
        let a = greedy_fill(&cost, &caps, &loads, total);
        prop_assert!((a.total() - total).abs() < 1e-6 * total.max(1.0));
        prop_assert!(a.shares.iter().all(|s| *s >= 0.0));
        prop_assert!(a.marginal >= 0.0);
    }

    /// The exact-potential identity ΔF_n = ΔW for arbitrary schedules and
    /// unilateral deviations, under both pricing policies.
    #[test]
    fn exact_potential_identity(
        rows in prop::collection::vec(
            prop::collection::vec(0.0f64..30.0, 4),
            3,
        ),
        deviation in prop::collection::vec(0.0f64..30.0, 4),
        who in 0usize..3,
        beta in 1.0f64..100.0,
        kappa in 0.0f64..1.0,
        nonlinear in any::<bool>(),
    ) {
        let cost = if nonlinear { nl_cost(beta, kappa, 0.9) } else { lin_cost(beta) };
        let caps = [50.0, 60.0, 70.0, 40.0];
        let sats: Vec<Box<dyn Satisfaction>> = (0..3)
            .map(|i| Box::new(LogSatisfaction::new(1.0 + i as f64)) as Box<dyn Satisfaction>)
            .collect();
        let mut schedule = PowerSchedule::zeros(3, 4);
        for (n, row) in rows.iter().enumerate() {
            schedule.set_row(OlevId(n), row);
        }
        let d = potential::potential_discrepancy(
            OlevId(who), &sats, &cost, &caps, &schedule, &deviation,
        );
        prop_assert!(d < 1e-8, "ΔF ≠ ΔW: {d}");
    }

    /// Unbiasedness: a zero row pays zero under any loads.
    #[test]
    fn zero_request_pays_zero(
        loads in prop::collection::vec(0.0f64..100.0, 1..12),
        beta in 1.0f64..100.0,
    ) {
        let cost = nl_cost(beta, 0.15, 0.9);
        let caps = vec![60.0; loads.len()];
        let zeros = vec![0.0; loads.len()];
        let paid = oes::game::payment_for_schedule(&cost, &caps, &loads, &zeros);
        prop_assert_eq!(paid, 0.0);
    }

    /// The marginal water-filling allocation always beats (or ties) a flat
    /// equal split on payment — Lemma IV.2's cost-minimality, sampled.
    #[test]
    fn waterfilling_beats_equal_split(
        loads in prop::collection::vec(0.0f64..50.0, 2..10),
        total in 0.1f64..200.0,
        beta in 1.0f64..100.0,
    ) {
        let cost = nl_cost(beta, 0.15, 0.9);
        let caps = vec![60.0; loads.len()];
        let q = oes::game::quote(&cost, &caps, &loads, Scheduler::WaterFilling, total);
        let equal = vec![total / loads.len() as f64; loads.len()];
        let flat = oes::game::payment_for_schedule(&cost, &caps, &loads, &equal);
        prop_assert!(q.payment <= flat + 1e-9);
    }

    /// Best responses never exceed the capacity bound and achieve
    /// non-negative utility (participating is always individually rational).
    #[test]
    fn best_response_is_feasible_and_rational(
        loads in prop::collection::vec(0.0f64..80.0, 1..10),
        p_max in 0.0f64..120.0,
        weight in 0.1f64..10.0,
        beta in 1.0f64..100.0,
    ) {
        let cost = nl_cost(beta, 0.15, 0.9);
        let caps = vec![60.0; loads.len()];
        let sat = LogSatisfaction::new(weight);
        let br = oes::game::best_response(
            &sat, &cost, &caps, &loads, p_max, Scheduler::WaterFilling,
        );
        prop_assert!(br.total >= 0.0 && br.total <= p_max + 1e-9);
        prop_assert!(br.utility >= -1e-9, "negative utility {}", br.utility);
        prop_assert!((br.allocation.total() - br.total).abs() < 1e-6 * br.total.max(1.0));
    }
}
