//! Service chaos suite: the networked coordinator under socket-level fault
//! injection.
//!
//! The in-process chaos suite (`tests/chaos.rs`) injects faults at the
//! message layer; this suite injects them at the *byte* layer, between a
//! real client/server pair speaking the framed wire protocol through a
//! seeded [`ChaosProxy`]. The acceptance properties:
//!
//! 1. **Bit identity.** A clean loopback service run — full stack: session
//!    coordinator, service envelopes, framing, transparent proxy, client
//!    session — produces the *identical* `Outcome` (trajectory, report,
//!    welfare bits) as the in-process `DistributedGame`.
//! 2. **Graceful degradation.** Under every seeded fault plan the surviving
//!    sessions converge, and every eviction is bounded and accounted in the
//!    `DegradationReport`.
//! 3. **Determinism.** Same seed, same run: outcomes, client stats, and
//!    final schedule bits all replay exactly.
//!
//! Everything below the two socket smoke tests runs on a virtual clock —
//! no test sleeps to make a deadline fire.

use std::time::Duration;

use oes::game::{
    DistributedGame, EvictionReason, FaultPlan, Game, GameBuilder, GameError, LogSatisfaction,
    Outcome, UpdateOrder,
};
use oes::service::{
    decode_server_frame, serve_tcp, BestResponder, ChaosConfig, ChaosProxy, ClientConfig,
    ClientSession, ClientStats, CoordinatorService, ServerToClient, ServiceConfig, ServiceStatus,
    ShedReason,
};
use oes::telemetry::{Clock, MonotonicClock, Telemetry};
use oes::units::{Kilowatts, OlevId};
use oes::wpt::framing::{encode_frame, FrameDecoder};
use oes::wpt::v2i::{OlevMessage, V2iFrame};

const SECTION_CAP: f64 = 60.0;
const PIPE_CAPACITY: usize = 1 << 16;

fn build(sections: usize, olevs: usize) -> Game {
    GameBuilder::new()
        .sections(sections, Kilowatts::new(SECTION_CAP))
        .olevs(olevs, Kilowatts::new(50.0))
        .build()
        .unwrap()
}

/// A short-deadline session config so virtual-clock fault runs stay brief.
fn fast_session() -> ServiceConfig {
    let mut config = ServiceConfig::default();
    config.session.offer_timeout = Duration::from_millis(5);
    config
}

/// The honest client for OLEV `olev` of a game shaped like [`build`].
fn make_client(game: &Game, olev: usize, config: ClientConfig) -> ClientSession {
    let responder = BestResponder::new(
        Box::new(LogSatisfaction::new(1.0)),
        *game.cost(),
        game.caps().to_vec(),
        game.p_max()[olev],
        game.scheduler(),
    );
    ClientSession::new(olev, Box::new(responder), config, Telemetry::disabled())
}

/// Drives a whole fleet against the service over chaos-proxied loopback
/// pipes on a virtual clock. `chaos(olev, incarnation)` configures the
/// proxy for each (re)connection; `client_config(olev)` the client knobs.
/// Panics if the run outlives `max_iters` ticks.
fn run_service(
    game: &mut Game,
    service_config: ServiceConfig,
    client_config: &dyn Fn(usize) -> ClientConfig,
    chaos: &dyn Fn(usize, u64) -> ChaosConfig,
    tick_us: u64,
    max_iters: usize,
) -> (Result<Outcome, GameError>, Vec<ClientStats>) {
    let n = game.olev_count();
    let mut clients: Vec<ClientSession> = (0..n)
        .map(|olev| make_client(game, olev, client_config(olev)))
        .collect();
    let mut service = CoordinatorService::new(game, service_config, Telemetry::disabled());
    let mut proxies: Vec<ChaosProxy> = Vec::new();
    let mut incarnation = vec![0u64; n];
    let mut now = 0u64;
    // Iterations to keep running after the server reports Done, so in-flight
    // goodbyes land in the report before `finish`.
    let mut grace = 8;
    for _ in 0..max_iters {
        for client in &mut clients {
            if client.needs_reconnect(now) {
                let olev = client.olev();
                let (proxy, client_end, server_end) =
                    ChaosProxy::new(chaos(olev, incarnation[olev]), PIPE_CAPACITY);
                incarnation[olev] += 1;
                service.accept(Box::new(server_end));
                client.connect(Box::new(client_end), now);
                proxies.push(proxy);
            }
        }
        for proxy in &mut proxies {
            proxy.pump(now);
        }
        for client in &mut clients {
            client.poll(now);
        }
        for proxy in &mut proxies {
            proxy.pump(now);
        }
        let status = service.poll(now);
        for proxy in &mut proxies {
            proxy.pump(now);
        }
        for client in &mut clients {
            client.poll(now);
        }
        if status == ServiceStatus::Done {
            grace -= 1;
            if grace == 0 {
                let stats = clients.iter().map(ClientSession::stats).collect();
                return (service.finish(), stats);
            }
        }
        now += tick_us;
    }
    panic!("service run did not finish within {max_iters} virtual ticks");
}

fn transparent(_olev: usize, _incarnation: u64) -> ChaosConfig {
    ChaosConfig::transparent()
}

fn default_client(_olev: usize) -> ClientConfig {
    ClientConfig::default()
}

// ---------------------------------------------------------------- identity

#[test]
fn clean_loopback_run_is_bit_identical_to_the_in_process_runtime() {
    let mut a = build(6, 4);
    let mut b = build(6, 4);
    let (outcome, stats) = run_service(
        &mut a,
        ServiceConfig::default(),
        &default_client,
        &transparent,
        0, // frozen clock: no deadline can fire, exactly like in-process
        50_000,
    );
    let via_service = outcome.unwrap();
    let via_threads = DistributedGame::new(&mut b).run(10_000).unwrap();
    assert_eq!(
        via_service, via_threads,
        "full service stack must replay the in-process run exactly"
    );
    assert!(via_service.converged());
    assert_eq!(a.welfare().to_bits(), b.welfare().to_bits());
    for (la, lb) in a.section_loads().iter().zip(b.section_loads()) {
        assert_eq!(la.to_bits(), lb.to_bits());
    }
    for s in &stats {
        assert!(s.offers_answered > 0);
        assert_eq!(s.budget_expired, 0);
        assert_eq!(s.disconnects, 0);
        assert_eq!(s.welcomes, 1);
    }
}

// ------------------------------------------------------------- determinism

#[test]
fn same_seed_chaos_runs_replay_bit_for_bit() {
    let chaos = |olev: usize, incarnation: u64| ChaosConfig {
        plan: Some(
            FaultPlan::new(40 + olev as u64)
                .drop_probability(0.10)
                .duplicate_probability(0.10)
                .max_delay_ms(3),
        ),
        corrupt_probability: 0.05,
        cut_probability: 0.03,
        reorder_probability: 0.10,
        reorder_hold_us: 2_000,
        seed: 7_000 + olev as u64 * 37 + incarnation,
        ..ChaosConfig::default()
    };
    let client = |_olev: usize| ClientConfig {
        idle_timeout_us: 20_000,
        ..ClientConfig::default()
    };
    let run = || {
        let mut game = build(6, 4);
        let (outcome, stats) =
            run_service(&mut game, fast_session(), &client, &chaos, 1_000, 60_000);
        (format!("{outcome:?}"), stats, game.welfare().to_bits())
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seeds must replay the same run");
}

// ------------------------------------------------------- graceful eviction

#[test]
fn blackholed_session_is_evicted_and_survivors_reach_their_equilibrium() {
    // OLEV 0's link drops every frame in both directions; the other three
    // OLEVs ride transparent links.
    let chaos = |olev: usize, _inc: u64| {
        if olev == 0 {
            ChaosConfig {
                plan: Some(FaultPlan::new(1).drop_probability(1.0)),
                ..ChaosConfig::default()
            }
        } else {
            ChaosConfig::transparent()
        }
    };
    let mut game = build(6, 4);
    let (outcome, _) = run_service(
        &mut game,
        fast_session(),
        &default_client,
        &chaos,
        1_000,
        60_000,
    );
    let outcome = outcome.unwrap();
    assert!(outcome.converged(), "survivors must still converge");
    let report = outcome.degradation();
    assert_eq!(report.evictions.len(), 1, "exactly the blackholed session");
    assert_eq!(report.evictions[0].olev, 0);
    assert!(matches!(
        report.evictions[0].reason,
        EvictionReason::Unresponsive
    ));
    // Retry budget 6: the first send plus six retransmissions all time out.
    assert_eq!(report.retries, 6);
    assert_eq!(report.timeouts, 7);

    // The survivors' equilibrium is the equilibrium of the surviving fleet:
    // OLEV 0's row is zeroed, so welfare is directly comparable to a
    // three-OLEV game of the same shape.
    let mut reference = build(6, 3);
    reference.run(UpdateOrder::RoundRobin, 10_000).unwrap();
    assert!(
        (game.welfare() - reference.welfare()).abs() < 1e-6,
        "survivor welfare {} vs reference {}",
        game.welfare(),
        reference.welfare()
    );
}

#[test]
fn corrupting_links_strike_only_their_own_sessions() {
    // OLEVs 0 and 1 get abusive links (corruption and mid-frame cuts);
    // OLEVs 2..4 are clean and must be untouched by the damage.
    let chaos = |olev: usize, inc: u64| {
        if olev <= 1 {
            ChaosConfig {
                corrupt_probability: 0.30,
                cut_probability: 0.20,
                seed: 1_000 + olev as u64 * 37 + inc,
                ..ChaosConfig::default()
            }
        } else {
            ChaosConfig::transparent()
        }
    };
    let client = |_olev: usize| ClientConfig {
        idle_timeout_us: 20_000,
        ..ClientConfig::default()
    };
    let mut game = build(6, 5);
    let (outcome, _) = run_service(&mut game, fast_session(), &client, &chaos, 1_000, 60_000);
    let outcome = outcome.unwrap();
    assert!(outcome.converged(), "the clean majority must converge");
    let report = outcome.degradation();
    for eviction in &report.evictions {
        assert!(
            eviction.olev <= 1,
            "clean links must never be evicted, yet OLEV {} was",
            eviction.olev
        );
        assert!(matches!(
            eviction.reason,
            EvictionReason::Misbehaving | EvictionReason::Unresponsive
        ));
    }
    assert!(report.evictions.len() <= 2);
}

// ----------------------------------------------------- reconnect and resume

#[test]
fn partitioned_client_fails_over_reconnects_and_resumes() {
    // OLEV 1's first connection is partitioned for its whole useful life;
    // its idle-timeout failover dials a fresh (clean) connection, the
    // session rebinds, and the run completes with no evictions at the
    // full-fleet equilibrium.
    let chaos = |olev: usize, inc: u64| {
        if olev == 1 && inc == 0 {
            ChaosConfig {
                partitions: vec![(0, 60_000)],
                ..ChaosConfig::default()
            }
        } else {
            ChaosConfig::transparent()
        }
    };
    let client = |_olev: usize| ClientConfig {
        idle_timeout_us: 15_000,
        ..ClientConfig::default()
    };
    let mut game = build(6, 4);
    let (outcome, stats) = run_service(&mut game, fast_session(), &client, &chaos, 1_000, 60_000);
    let outcome = outcome.unwrap();
    assert!(outcome.converged());
    let report = outcome.degradation();
    assert!(
        report.evictions.is_empty(),
        "a reconnect within the retry budget must not cost the session: {report:?}"
    );
    assert!(report.retries > 0, "the partition must have cost retries");
    assert!(stats[1].disconnects >= 1, "OLEV 1 must have failed over");
    assert!(stats[1].welcomes >= 1, "OLEV 1 must have re-attached");

    // Full quorum survived, so the equilibrium is the fault-free one.
    let mut reference = build(6, 4);
    reference.run(UpdateOrder::RoundRobin, 10_000).unwrap();
    assert!((game.welfare() - reference.welfare()).abs() < 1e-6);
}

// ------------------------------------------------------- deadline budgets

#[test]
fn propagated_budget_makes_slow_clients_drop_doomed_replies() {
    // OLEV 0 "thinks" for 8ms. The first offer grants a 5ms budget, so the
    // client drops it client-side (a reply would arrive stale anyway); the
    // retry doubles the budget to 10ms, which the client meets. The run
    // converges with retries but no evictions — and the client accounted
    // every doomed reply it refused to send.
    let client = |olev: usize| ClientConfig {
        respond_delay_us: if olev == 0 { 8_000 } else { 0 },
        ..ClientConfig::default()
    };
    let mut game = build(6, 3);
    let (outcome, stats) = run_service(
        &mut game,
        fast_session(),
        &client,
        &transparent,
        1_000,
        60_000,
    );
    let outcome = outcome.unwrap();
    assert!(outcome.converged());
    let report = outcome.degradation();
    assert!(report.evictions.is_empty(), "{report:?}");
    assert!(report.retries > 0, "every OLEV-0 offer needs a second send");
    assert!(report.timeouts > 0);
    assert!(
        stats[0].budget_expired > 0,
        "the slow client must refuse doomed replies"
    );
    assert_eq!(stats[1].budget_expired, 0);
    assert_eq!(stats[2].budget_expired, 0);
}

// ----------------------------------------------------------- backpressure

#[test]
fn queue_bounds_shed_typed_responses_instead_of_dropping() {
    let spam_burst = |service_config: ServiceConfig, frames: usize| {
        let mut game = build(4, 2);
        let mut service = CoordinatorService::new(&mut game, service_config, Telemetry::disabled());
        let (mut client_end, server_end) = oes::service::loopback_pair(PIPE_CAPACITY);
        service.accept(Box::new(server_end));
        // Attach, then spam replies far faster than any session could earn.
        let attach = oes::service::ClientToServer::Attach {
            olev: 0,
            resume_from: 0,
        };
        let mut wire = encode_frame(&attach).unwrap();
        for _ in 0..frames {
            let reply = oes::service::ClientToServer::Reply(V2iFrame::new(
                9_999,
                OlevMessage::PowerRequest {
                    id: OlevId(0),
                    total: Kilowatts::new(1.0),
                },
            ));
            wire.extend(encode_frame(&reply).unwrap());
        }
        use oes::service::ByteStream;
        assert_eq!(client_end.write_some(&wire).unwrap(), wire.len());
        service.poll(0);
        // Collect everything the server said back.
        let mut decoder = FrameDecoder::new();
        let mut buf = [0u8; 4096];
        while let Ok(n) = client_end.read_some(&mut buf) {
            if n == 0 {
                break;
            }
            decoder.push(&buf[..n]);
        }
        let mut sheds = Vec::new();
        let mut welcomes = 0;
        for tokens in decoder.drain_frames() {
            match decode_server_frame(&tokens).unwrap() {
                ServerToClient::Shed {
                    reason,
                    retry_after_us,
                } => {
                    assert!(retry_after_us > 0);
                    sheds.push(reason);
                }
                ServerToClient::Welcome { olev } => {
                    assert_eq!(olev, 0);
                    welcomes += 1;
                }
                _ => {}
            }
        }
        assert_eq!(welcomes, 1);
        assert_eq!(service.live(), 2, "shedding must never evict a session");
        sheds
    };

    // Tight per-session queue: the session bound trips first.
    let mut config = ServiceConfig::default();
    config.session_queue = 2;
    let sheds = spam_burst(config, 10);
    assert_eq!(sheds.len(), 9, "attach + 1 queued reply fit; 9 shed");
    assert!(sheds.iter().all(|r| *r == ShedReason::SessionQueueFull));

    // Tight global queue: the server-wide bound trips first.
    let mut config = ServiceConfig::default();
    config.global_queue = 3;
    let sheds = spam_burst(config, 10);
    assert_eq!(sheds.len(), 8, "attach + 2 queued replies fit; 8 shed");
    assert!(sheds.iter().all(|r| *r == ShedReason::GlobalQueueFull));
}

// -------------------------------------------------------- socket smoke

/// Runs `n` real-socket clients on their own threads against a blocking
/// accept loop on this thread, returning the outcome and per-client stats.
fn socket_smoke<L, C>(game: &mut Game, n: usize, serve: L, connect: C) -> Outcome
where
    L: FnOnce(&mut Game) -> Result<Outcome, GameError>,
    C: Fn(usize) -> std::thread::JoinHandle<ClientStats>,
{
    let handles: Vec<_> = (0..n).map(connect).collect();
    let outcome = serve(game).unwrap();
    for handle in handles {
        let stats = handle.join().unwrap();
        assert!(stats.offers_answered > 0, "every client must participate");
    }
    outcome
}

fn spawn_socket_client<S, F>(
    olev: usize,
    cost: oes::game::SectionCost,
    caps: Vec<f64>,
    p_max: f64,
    scheduler: oes::game::Scheduler,
    dial: F,
) -> std::thread::JoinHandle<ClientStats>
where
    S: oes::service::ByteStream + 'static,
    F: Fn() -> S + Send + 'static,
{
    std::thread::spawn(move || {
        let responder = BestResponder::new(
            Box::new(LogSatisfaction::new(1.0)),
            cost,
            caps,
            p_max,
            scheduler,
        );
        let mut client = ClientSession::new(
            olev,
            Box::new(responder),
            ClientConfig::default(),
            Telemetry::disabled(),
        );
        let clock = MonotonicClock::new();
        client.connect(Box::new(dial()), clock.now_micros());
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while !client.is_done() {
            assert!(!client.is_failed(), "client burned its reconnect budget");
            let now = clock.now_micros();
            if client.needs_reconnect(now) {
                client.connect(Box::new(dial()), now);
            }
            client.poll(now);
            assert!(
                std::time::Instant::now() < deadline,
                "socket client timed out"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
        client.stats()
    })
}

#[test]
fn tcp_service_converges_with_real_sockets() {
    let mut game = build(6, 3);
    let cost = *game.cost();
    let caps = game.caps().to_vec();
    let p_max = game.p_max().to_vec();
    let scheduler = game.scheduler();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let outcome = socket_smoke(
        &mut game,
        3,
        |game| {
            serve_tcp(
                game,
                ServiceConfig::default(),
                Telemetry::disabled(),
                &listener,
                Duration::from_micros(200),
            )
        },
        |olev| {
            spawn_socket_client(
                olev,
                cost,
                caps.clone(),
                p_max[olev],
                scheduler,
                move || {
                    let stream = std::net::TcpStream::connect(addr).unwrap();
                    oes::service::tcp_stream(stream).unwrap()
                },
            )
        },
    );
    assert!(outcome.converged());
    assert!(outcome.degradation().hellos >= 3);
}

#[cfg(unix)]
#[test]
fn uds_service_converges_with_real_sockets() {
    let path = std::env::temp_dir().join(format!("oes-service-uds-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut game = build(6, 3);
    let cost = *game.cost();
    let caps = game.caps().to_vec();
    let p_max = game.p_max().to_vec();
    let scheduler = game.scheduler();
    let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
    let outcome = socket_smoke(
        &mut game,
        3,
        |game| {
            oes::service::serve_uds(
                game,
                ServiceConfig::default(),
                Telemetry::disabled(),
                &listener,
                Duration::from_micros(200),
            )
        },
        |olev| {
            let path = path.clone();
            spawn_socket_client(
                olev,
                cost,
                caps.clone(),
                p_max[olev],
                scheduler,
                move || {
                    let stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
                    oes::service::unix_stream(stream).unwrap()
                },
            )
        },
    );
    let _ = std::fs::remove_file(&path);
    assert!(outcome.converged());
    assert!(outcome.degradation().hellos >= 3);
}
