//! Chaos suite: the decentralized runtime under deterministic fault injection.
//!
//! Theorem IV.1 makes the best-response dynamics an exact potential game, so
//! the equilibrium is invariant to *which* OLEV updates when — the hardened
//! runtime leans on that to survive drops, duplicates, reordering, stalls,
//! crashes, and departures. These tests pin the three acceptance properties:
//!
//! 1. **Eventual delivery ⇒ fault-free welfare.** If no OLEV is evicted, the
//!    faulted run converges to the same social welfare as a fault-free run of
//!    the full fleet (within 1e-6).
//! 2. **Evictions shrink the quorum, not the guarantee.** With evictions, the
//!    survivors converge to the optimum of the *surviving* fleet (evicted
//!    rows are zeroed and `U(0) = 0`, so welfare is directly comparable).
//! 3. **Bit determinism.** Two runs with the same seed produce identical
//!    `Outcome` trajectories, identical degradation reports, and bit-equal
//!    welfare (single-offer window only; see the `distributed` module docs).
//!
//! No lost message may ever deadlock `run`: every wait is bounded by a
//! deadline plus a finite retry budget, and fault verdicts the coordinator
//! can pre-compute are expired *virtually*, so even a 100%-loss plan fails
//! fast rather than waiting out wall-clock timeouts.

use std::time::{Duration, Instant};

use oes::game::{
    ApplyMode, DistributedGame, EvictionReason, FaultPlan, GameBuilder, GameError, Outcome,
    ParallelConfig, StaleDistributedGame, UpdateOrder,
};
use oes::telemetry::Telemetry;
use oes::units::Kilowatts;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const SECTION_CAP: f64 = 60.0;

/// A uniform fleet: `olevs` identical OLEVs over `sections` sections.
fn build(sections: usize, olevs: usize, p_max: f64) -> oes::game::Game {
    GameBuilder::new()
        .sections(sections, Kilowatts::new(SECTION_CAP))
        .olevs(olevs, Kilowatts::new(p_max))
        .build()
        .expect("valid scenario")
}

/// Fault-free ground truth: the in-process engine on the same uniform fleet.
///
/// Because evicted rows are zeroed and `LogSatisfaction` has `U(0) = 0`, the
/// welfare of a faulted run with `k` survivors is comparable to a fresh
/// `k`-OLEV fleet.
fn reference_welfare(sections: usize, olevs: usize, p_max: f64) -> f64 {
    let mut game = build(sections, olevs, p_max);
    let outcome = game
        .run(UpdateOrder::RoundRobin, 20_000)
        .expect("reference run");
    assert!(outcome.converged(), "reference must converge");
    game.welfare()
}

/// Run a faulted single-window game and return `(outcome, welfare)`.
fn run_faulted(
    sections: usize,
    olevs: usize,
    p_max: f64,
    plan: FaultPlan,
    budget: u32,
) -> Result<(Outcome, f64), GameError> {
    let mut game = build(sections, olevs, p_max);
    let outcome = DistributedGame::new(&mut game)
        .with_faults(plan)
        .offer_timeout(Duration::from_millis(10))
        .retry_budget(budget)
        .run(8_000)?;
    let welfare = game.welfare();
    Ok((outcome, welfare))
}

// ---------------------------------------------------------------------------
// Acceptance scenario: ≤20% drop + duplication + reordering + one crash.
// ---------------------------------------------------------------------------

#[test]
fn chaos_with_one_crash_matches_surviving_fleet_and_is_deterministic() {
    let plan = || {
        FaultPlan::new(2024)
            .drop_probability(0.2)
            .duplicate_probability(0.2)
            .max_delay_ms(25)
            .crash(2, 1)
    };

    let (first, first_welfare) = run_faulted(6, 5, 50.0, plan(), 12).expect("survivors converge");
    let (second, second_welfare) = run_faulted(6, 5, 50.0, plan(), 12).expect("survivors converge");

    // Bit determinism: trajectories, degradation reports, and welfare.
    assert_eq!(first, second, "same seed must replay the same Outcome");
    assert_eq!(first_welfare.to_bits(), second_welfare.to_bits());

    assert!(first.converged(), "survivors must still converge");
    let report = first.degradation();
    assert_eq!(
        report.evictions.len(),
        1,
        "exactly the crashed OLEV is evicted"
    );
    assert_eq!(report.evictions[0].olev, 2);
    assert!(
        matches!(report.evictions[0].reason, EvictionReason::Crashed(_)),
        "crash must be attributed, got {:?}",
        report.evictions[0].reason
    );
    // The crash itself forces at least one real (non-virtual) timeout.
    assert!(report.timeouts >= 1);
    assert_eq!(report.survivors(5), vec![0, 1, 3, 4]);

    // Welfare matches the fault-free optimum of the 4 survivors.
    let reference = reference_welfare(6, 4, 50.0);
    assert!(
        (first_welfare - reference).abs() < 1e-6,
        "survivor welfare {first_welfare} vs reference {reference}"
    );
}

// ---------------------------------------------------------------------------
// Lossy-but-eventual delivery leaves the equilibrium untouched.
// ---------------------------------------------------------------------------

#[test]
fn duplicates_and_reordering_alone_cost_nothing() {
    let reference = reference_welfare(5, 4, 45.0);
    let mut duplicates_seen = 0usize;
    for seed in 0..4 {
        let plan = FaultPlan::new(seed)
            .duplicate_probability(0.3)
            .max_delay_ms(25);
        let (outcome, welfare) = run_faulted(5, 4, 45.0, plan, 12).expect("no evictions expected");
        assert!(outcome.converged());
        assert!(outcome.degradation().evictions.is_empty());
        duplicates_seen += outcome.degradation().duplicates;
        assert!(
            (welfare - reference).abs() < 1e-6,
            "seed {seed}: welfare {welfare} vs reference {reference}"
        );
    }
    assert!(
        duplicates_seen > 0,
        "0.3 duplication over 4 seeds must duplicate something"
    );
}

#[test]
fn lossless_fault_plan_replays_the_clean_run_exactly() {
    let mut clean_game = build(6, 4, 50.0);
    let clean = DistributedGame::new(&mut clean_game)
        .run(2_000)
        .expect("clean run");

    let mut faulted_game = build(6, 4, 50.0);
    let faulted = DistributedGame::new(&mut faulted_game)
        .with_faults(FaultPlan::new(99))
        .run(2_000)
        .expect("lossless faulted run");

    assert_eq!(
        clean, faulted,
        "a lossless plan must not perturb the runtime"
    );
    assert_eq!(
        clean_game.welfare().to_bits(),
        faulted_game.welfare().to_bits()
    );
    assert!(faulted.degradation().is_clean());
}

#[test]
fn corrupted_replies_are_quarantined_not_believed() {
    let reference = reference_welfare(5, 4, 50.0);
    let mut corruption_seen = false;
    for seed in 0..6 {
        let plan = FaultPlan::new(seed).corrupt_probability(0.15);
        match run_faulted(5, 4, 50.0, plan, 20) {
            Ok((outcome, welfare)) => {
                let report = outcome.degradation();
                if report.invalid_replies > 0 || report.clamped_replies > 0 {
                    corruption_seen = true;
                }
                // NaN/negative replies are retried, overlarge ones clamped;
                // a fully surviving fleet must still land on the optimum.
                if report.evictions.is_empty() {
                    assert!(outcome.converged());
                    assert!(
                        (welfare - reference).abs() < 1e-6,
                        "seed {seed}: welfare {welfare} vs reference {reference}"
                    );
                } else {
                    corruption_seen = true;
                    assert!(report
                        .evictions
                        .iter()
                        .all(|e| matches!(e.reason, EvictionReason::Misbehaving)));
                }
            }
            // A persistently lying fleet may be evicted wholesale.
            Err(GameError::OlevEvicted(_)) => corruption_seen = true,
            Err(other) => panic!("unexpected error under corruption: {other}"),
        }
    }
    assert!(
        corruption_seen,
        "15% corruption over 6 seeds must corrupt something"
    );
}

// ---------------------------------------------------------------------------
// Departures and total loss: bounded, attributed, never deadlocked.
// ---------------------------------------------------------------------------

#[test]
fn departures_shrink_the_quorum_gracefully() {
    let plan = FaultPlan::new(7).depart(0, 6).depart(3, 6);
    let (outcome, welfare) = run_faulted(5, 4, 50.0, plan, 6).expect("survivors converge");

    assert!(outcome.converged());
    let report = outcome.degradation();
    assert_eq!(report.evicted(), vec![0, 3]);
    assert!(report
        .evictions
        .iter()
        .all(|e| matches!(e.reason, EvictionReason::Departed)));
    assert_eq!(report.survivors(4), vec![1, 2]);
    // Departure is cooperative: everyone said hello, everyone said goodbye.
    assert_eq!(report.hellos, 4);
    assert_eq!(report.goodbyes, 4);

    let reference = reference_welfare(5, 2, 50.0);
    assert!(
        (welfare - reference).abs() < 1e-6,
        "survivor welfare {welfare} vs reference {reference}"
    );
}

#[test]
fn total_packet_loss_fails_fast_instead_of_deadlocking() {
    let started = Instant::now();
    let plan = FaultPlan::new(11).drop_probability(1.0);
    let result = run_faulted(4, 3, 40.0, plan, 4);
    // Drop verdicts are plan-derived, so the coordinator expires them
    // virtually: exhausting every retry budget takes milliseconds, not
    // `budget × timeout` of wall clock.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "100% loss must fail fast, took {:?}",
        started.elapsed()
    );
    match result {
        Err(GameError::OlevEvicted(olev)) => assert_eq!(olev, 2, "round-robin evicts 0, 1, 2"),
        other => panic!("expected every OLEV evicted, got {other:?}"),
    }
}

#[test]
fn a_permanently_stalled_fleet_is_evicted_in_bounded_time() {
    let started = Instant::now();
    let plan = FaultPlan::new(13).stall_probability(1.0);
    let result = run_faulted(4, 3, 40.0, plan, 3);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "stall storm must stay bounded, took {:?}",
        started.elapsed()
    );
    assert!(
        matches!(result, Err(GameError::OlevEvicted(_))),
        "silent workers must be evicted, got {result:?}"
    );
}

// ---------------------------------------------------------------------------
// Stale windows under faults (welfare only — no bit-determinism claim).
// ---------------------------------------------------------------------------

#[test]
fn stale_window_survives_lossy_links() {
    let mut game = build(6, 4, 50.0);
    let plan = FaultPlan::new(41)
        .drop_probability(0.15)
        .duplicate_probability(0.1)
        .max_delay_ms(25);
    let outcome = StaleDistributedGame::new(&mut game, 3)
        .with_faults(plan)
        .offer_timeout(Duration::from_millis(10))
        .retry_budget(12)
        .run(8_000)
        .expect("stale chaos run");

    assert!(outcome.converged());
    assert!(outcome.degradation().evictions.is_empty());
    let reference = reference_welfare(6, 4, 50.0);
    let welfare = game.welfare();
    assert!(
        (welfare - reference).abs() < 1e-6,
        "stale chaos welfare {welfare} vs reference {reference}"
    );
}

// ---------------------------------------------------------------------------
// Heterogeneous fleet under faults: eviction zeroes exactly one row.
// ---------------------------------------------------------------------------

#[test]
fn heterogeneous_fleet_survives_a_crash() {
    let mut game = GameBuilder::new()
        .sections(6, Kilowatts::new(SECTION_CAP))
        .olevs_weighted(1, Kilowatts::new(60.0), 1.0)
        .olevs_weighted(1, Kilowatts::new(30.0), 2.0)
        .olevs_weighted(1, Kilowatts::new(45.0), 0.5)
        .build()
        .expect("valid scenario");
    let plan = FaultPlan::new(5).drop_probability(0.1).crash(0, 1);
    let outcome = DistributedGame::new(&mut game)
        .with_faults(plan)
        .offer_timeout(Duration::from_millis(10))
        .retry_budget(12)
        .run(8_000)
        .expect("survivors converge");

    assert!(outcome.converged());
    assert_eq!(outcome.degradation().evicted(), vec![0]);

    // Reference: the surviving two OLEVs, fault-free, in process.
    let mut reference_game = GameBuilder::new()
        .sections(6, Kilowatts::new(SECTION_CAP))
        .olevs_weighted(1, Kilowatts::new(30.0), 2.0)
        .olevs_weighted(1, Kilowatts::new(45.0), 0.5)
        .build()
        .expect("valid scenario");
    reference_game
        .run(UpdateOrder::RoundRobin, 20_000)
        .expect("reference run");
    let reference = reference_game.welfare();
    let welfare = game.welfare();
    assert!(
        (welfare - reference).abs() < 1e-6,
        "heterogeneous survivor welfare {welfare} vs reference {reference}"
    );
}

// ---------------------------------------------------------------------------
// Fault plans compose with the in-process parallel sweep engine.
// ---------------------------------------------------------------------------

#[test]
fn parallel_sweeps_compose_with_fault_plans() {
    // The same deterministic fault plans that drive the decentralized
    // runtime drive `run_parallel_faulted`: dropped uplinks discard moves
    // (retried next sweep), departures evict, and the whole composition
    // stays bit-deterministic under sharding.
    let run = || {
        let mut game = build(6, 5, 50.0);
        let plan = FaultPlan::new(2031).drop_probability(0.2).depart(1, 40);
        let outcome = game
            .run_parallel_faulted(
                UpdateOrder::Random { seed: 9 },
                20_000,
                ParallelConfig::new(4),
                &plan,
                &Telemetry::disabled(),
            )
            .expect("faulted parallel run");
        let welfare = game.welfare();
        (outcome, welfare)
    };
    let (first, first_welfare) = run();
    let (second, second_welfare) = run();

    assert_eq!(first, second, "same seed must replay the same Outcome");
    assert_eq!(first_welfare.to_bits(), second_welfare.to_bits());

    assert!(first.converged(), "survivors must still converge");
    let report = first.degradation();
    assert_eq!(report.evicted(), vec![1], "the departed OLEV is evicted");
    assert!(
        report.drops > 0,
        "20% uplink loss over a long run must drop something"
    );

    // Welfare matches the fault-free optimum of the 4 survivors.
    let reference = reference_welfare(6, 4, 50.0);
    assert!(
        (first_welfare - reference).abs() < 1e-6,
        "survivor welfare {first_welfare} vs reference {reference}"
    );
}

#[test]
fn partitioned_apply_composes_with_fault_plans() {
    // Same composition as above, but with the concurrent-commit apply
    // path: dropped uplinks and mid-run departures must neither break
    // same-seed bit-determinism nor pull the survivors off the fault-free
    // optimum when commits are guarded per partition.
    let run = || {
        let mut game = build(6, 5, 50.0);
        let plan = FaultPlan::new(2031).drop_probability(0.2).depart(1, 40);
        let outcome = game
            .run_parallel_faulted(
                UpdateOrder::Random { seed: 9 },
                20_000,
                ParallelConfig::new(4).with_apply(ApplyMode::Partitioned),
                &plan,
                &Telemetry::disabled(),
            )
            .expect("faulted partitioned run");
        let welfare = game.welfare();
        (outcome, welfare)
    };
    let (first, first_welfare) = run();
    let (second, second_welfare) = run();

    assert_eq!(first, second, "same seed must replay the same Outcome");
    assert_eq!(first_welfare.to_bits(), second_welfare.to_bits());

    assert!(first.converged(), "survivors must still converge");
    let report = first.degradation();
    assert_eq!(report.evicted(), vec![1], "the departed OLEV is evicted");

    let reference = reference_welfare(6, 4, 50.0);
    assert!(
        (first_welfare - reference).abs() < 1e-6,
        "survivor welfare {first_welfare} vs reference {reference}"
    );
}

// ---------------------------------------------------------------------------
// Property tests: determinism and eventual-delivery welfare over random plans.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Same seed ⇒ identical `Outcome` (trajectory, counters, evictions) and
    /// bit-equal welfare, for any mix of drops, duplicates, and reordering.
    #[test]
    fn same_seed_replays_bit_identically(
        seed in any::<u64>(),
        drop_p in 0.0f64..0.2,
        dup_p in 0.0f64..0.2,
        delay in 0u64..25,
        sections in 4usize..8,
        olevs in 3usize..6,
    ) {
        let plan = || FaultPlan::new(seed)
            .drop_probability(drop_p)
            .duplicate_probability(dup_p)
            .max_delay_ms(delay);
        let (first, first_welfare) = match run_faulted(sections, olevs, 50.0, plan(), 12) {
            Ok(run) => run,
            Err(GameError::OlevEvicted(_)) => return Ok(()),
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        };
        let (second, second_welfare) =
            run_faulted(sections, olevs, 50.0, plan(), 12).expect("first run succeeded");
        prop_assert_eq!(first, second);
        prop_assert_eq!(first_welfare.to_bits(), second_welfare.to_bits());
    }

    /// Eventual delivery with no evictions ⇒ the faulted equilibrium welfare
    /// equals the fault-free full-fleet optimum within 1e-6; with evictions,
    /// it equals the optimum of the surviving fleet.
    #[test]
    fn lossy_runs_land_on_the_survivors_optimum(
        seed in any::<u64>(),
        drop_p in 0.0f64..0.2,
        dup_p in 0.0f64..0.2,
        delay in 0u64..25,
        sections in 4usize..8,
        olevs in 3usize..6,
    ) {
        let plan = FaultPlan::new(seed)
            .drop_probability(drop_p)
            .duplicate_probability(dup_p)
            .max_delay_ms(delay);
        let (outcome, welfare) = match run_faulted(sections, olevs, 50.0, plan, 12) {
            Ok(run) => run,
            Err(GameError::OlevEvicted(_)) => return Ok(()),
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        };
        prop_assert!(outcome.converged(), "lossy-but-delivered runs must converge");
        let survivors = outcome.degradation().survivors(olevs).len();
        prop_assert!(survivors > 0);
        let reference = reference_welfare(sections, survivors, 50.0);
        prop_assert!(
            (welfare - reference).abs() < 1e-6,
            "welfare {} vs {}-OLEV reference {}", welfare, survivors, reference
        );
    }
}
