//! The incremental-state equivalence surface.
//!
//! The engines maintain section loads, OLEV totals, and the welfare sums
//! incrementally (O(C) per update) instead of recomputing them (O(N·C) per
//! query). These tests pin the refactor to the naive recompute path:
//!
//! - seeded property sweeps over random schedules and row deviations assert
//!   the cached aggregates and cached welfare stay within 1e-9 of the naive
//!   `section_loads`-from-entries / `social_welfare` recompute, including
//!   across the periodic exact-resync boundaries;
//! - the in-process and decentralized engines are exercised with a
//!   zero-update budget (the empty-trajectory `final_welfare` regression);
//! - a run with the default resync interval must match a run resyncing on
//!   every update — which reproduces the pre-incremental path exactly — in
//!   convergence, update count, and welfare.
//!
//! The RNG is a local SplitMix64 so the sweep stays deterministic and free
//! of external crates.

use oes::game::potential::social_welfare;
use oes::game::pricing::{NonlinearPricing, OverloadPenalty, PricingPolicy, SectionCost};
use oes::game::satisfaction::{LogSatisfaction, Satisfaction};
use oes::game::schedule::RESYNC_WRITES;
use oes::game::{DistributedGame, GameBuilder, PowerSchedule, ScheduleState, UpdateOrder};
use oes::units::{Kilowatts, OlevId, SectionId};

/// SplitMix64: tiny, seedable, and plenty for test-case generation.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A random row with a healthy mix of zeros (water-filling produces sparse
/// rows, so the cache must be exercised on them).
fn random_row(rng: &mut SplitMix64, sections: usize, scale: f64) -> Vec<f64> {
    (0..sections)
        .map(|_| {
            if rng.next_f64() < 0.3 {
                0.0
            } else {
                rng.next_f64() * scale
            }
        })
        .collect()
}

/// Naive column sums straight from the mirrored rows — no caches involved.
fn naive_loads(rows: &[Vec<f64>], sections: usize) -> Vec<f64> {
    let mut loads = vec![0.0; sections];
    for row in rows {
        for (c, load) in loads.iter_mut().enumerate() {
            *load += row[c];
        }
    }
    loads
}

#[test]
fn cached_schedule_aggregates_match_naive_recomputes() {
    let mut rng = SplitMix64(0x0e5_0e5);
    for _trial in 0..40 {
        let olevs = 1 + rng.pick(12);
        let sections = 1 + rng.pick(10);
        let mut schedule = PowerSchedule::zeros(olevs, sections);
        let mut mirror = vec![vec![0.0; sections]; olevs];
        for _step in 0..120 {
            let n = rng.pick(olevs);
            if rng.next_f64() < 0.15 {
                // Exercise the O(1) single-entry path too.
                let c = rng.pick(sections);
                let v = rng.next_f64() * 30.0;
                schedule.set(OlevId(n), SectionId(c), v);
                mirror[n][c] = v;
            } else {
                let row = random_row(&mut rng, sections, 30.0);
                schedule.set_row(OlevId(n), &row);
                mirror[n] = row.clone();
            }
            let loads = naive_loads(&mirror, sections);
            for (c, &expected) in loads.iter().enumerate() {
                assert!(
                    (schedule.section_load(SectionId(c)) - expected).abs() < 1e-9,
                    "section {c}: cached {} vs naive {expected}",
                    schedule.section_load(SectionId(c))
                );
            }
            let total: f64 = loads.iter().sum();
            assert!((schedule.total() - total).abs() < 1e-9);
            for (n, row) in mirror.iter().enumerate() {
                let expected: f64 = row.iter().sum();
                assert!((schedule.olev_total(OlevId(n)) - expected).abs() < 1e-9);
            }
            // P_{-n,c} from the cache vs from the mirror.
            let probe = rng.pick(olevs);
            let excl = schedule.loads_excluding(OlevId(probe));
            for (c, &load) in loads.iter().enumerate() {
                let expected = (load - mirror[probe][c]).max(0.0);
                assert!((excl[c] - expected).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn cached_aggregates_survive_the_automatic_resync_boundary() {
    // Enough writes to cross the schedule's self-resync threshold twice.
    let mut rng = SplitMix64(77);
    let (olevs, sections) = (4, 6);
    let mut schedule = PowerSchedule::zeros(olevs, sections);
    let mut mirror = vec![vec![0.0; sections]; olevs];
    for step in 0..(2 * RESYNC_WRITES + 50) {
        let n = rng.pick(olevs);
        let row = random_row(&mut rng, sections, 25.0);
        schedule.set_row(OlevId(n), &row);
        mirror[n] = row;
        if step % 97 == 0 || step % RESYNC_WRITES >= RESYNC_WRITES - 2 {
            let loads = naive_loads(&mirror, sections);
            for (c, &expected) in loads.iter().enumerate() {
                assert!(
                    (schedule.section_load(SectionId(c)) - expected).abs() < 1e-9,
                    "step {step}, section {c}"
                );
            }
        }
    }
}

fn paper_cost() -> SectionCost {
    SectionCost::new(
        PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
        OverloadPenalty::new(0.15),
        0.9,
    )
}

#[test]
fn cached_welfare_matches_naive_social_welfare_across_resyncs() {
    let mut rng = SplitMix64(2024);
    for trial in 0..12 {
        let olevs = 1 + rng.pick(8);
        let sections = 1 + rng.pick(8);
        let caps: Vec<f64> = (0..sections)
            .map(|_| 20.0 + rng.next_f64() * 60.0)
            .collect();
        let sats: Vec<Box<dyn Satisfaction>> = (0..olevs)
            .map(|_| {
                Box::new(LogSatisfaction::new(0.2 + rng.next_f64() * 3.0)) as Box<dyn Satisfaction>
            })
            .collect();
        let cost = paper_cost();
        let mut state =
            ScheduleState::new(PowerSchedule::zeros(olevs, sections), &sats, &cost, &caps);
        // A short interval forces many exact-resync crossings per trial.
        state.set_resync_interval(1 + rng.pick(7));
        for step in 0..80 {
            let n = rng.pick(olevs);
            let row = random_row(&mut rng, sections, 20.0);
            state.apply_row(OlevId(n), &row, &sats, &cost, &caps);
            let naive = social_welfare(&sats, &cost, &caps, state.schedule());
            assert!(
                (state.welfare() - naive).abs() < 1e-9,
                "trial {trial}, step {step}: cached {} vs naive {naive}",
                state.welfare()
            );
        }
    }
}

fn scenario() -> oes::game::Game {
    GameBuilder::new()
        .sections(16, Kilowatts::new(45.0))
        .olevs(12, Kilowatts::new(55.0))
        .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
            15.0,
        )))
        .build()
        .expect("valid scenario")
}

#[test]
fn default_resync_interval_matches_the_per_update_naive_path() {
    let mut cached = scenario();
    let mut naive = scenario();
    // Resyncing after every update reproduces the pre-incremental engine's
    // exact summation order; the default interval must land within 1e-9.
    naive.set_welfare_resync_interval(1);
    let out_cached = cached.run(UpdateOrder::RoundRobin, 5000).expect("runs");
    let out_naive = naive.run(UpdateOrder::RoundRobin, 5000).expect("runs");
    assert_eq!(out_cached.converged(), out_naive.converged());
    assert_eq!(out_cached.updates(), out_naive.updates());
    assert!((out_cached.final_welfare() - out_naive.final_welfare()).abs() < 1e-9);
    for (a, b) in out_cached.trajectory.iter().zip(&out_naive.trajectory) {
        assert!((a.welfare - b.welfare).abs() < 1e-9, "update {}", a.update);
        assert!((a.congestion - b.congestion).abs() < 1e-9);
    }
    // The cached loads feed the best responses, so the two equilibria can
    // differ by a few ulp per entry — they must agree to 1e-9, not bit-wise.
    for n in 0..12 {
        let (a, b) = (
            cached.schedule().row(OlevId(n)),
            naive.schedule().row(OlevId(n)),
        );
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "olev {n}: {x} vs {y}");
        }
    }
}

#[test]
fn zero_update_budget_is_welfare_safe_on_both_engines() {
    // Regression: `Outcome::final_welfare()` used to panic on the empty
    // trajectory either engine produces under a zero-update budget.
    let mut in_process = scenario();
    let out = in_process.run(UpdateOrder::RoundRobin, 0).expect("runs");
    assert_eq!(out.updates(), 0);
    assert_eq!(
        out.final_welfare().to_bits(),
        in_process.welfare().to_bits()
    );
    assert_eq!(out.updates_to_reach(0.95), None);

    let mut decentralized = scenario();
    let out = DistributedGame::new(&mut decentralized)
        .run(0)
        .expect("runs");
    assert_eq!(out.updates(), 0);
    assert!(out.trajectory.is_empty());
    assert_eq!(
        out.final_welfare().to_bits(),
        decentralized.welfare().to_bits()
    );
    assert_eq!(out.updates_to_reach(0.95), None);
}
