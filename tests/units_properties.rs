//! Property tests on the typed-quantity algebra: conversions round-trip,
//! arithmetic is consistent, and validated ratios never escape their ranges.

use oes::units::{
    Amperes, Efficiency, Hours, KilowattHours, Kilowatts, MegawattHours, Meters, MetersPerSecond,
    MilesPerHour, Seconds, StateOfCharge, Volts,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn speed_conversion_roundtrips(v in 0.0f64..300.0) {
        let back = MilesPerHour::new(v).to_meters_per_second().to_miles_per_hour();
        prop_assert!((back.value() - v).abs() < 1e-9 * v.max(1.0));
    }

    #[test]
    fn energy_conversion_roundtrips(e in 0.0f64..1e7) {
        let back = KilowattHours::new(e).to_megawatt_hours().to_kilowatt_hours();
        prop_assert!((back.value() - e).abs() < 1e-9 * e.max(1.0));
    }

    #[test]
    fn time_conversion_roundtrips(t in 0.0f64..1e6) {
        let back = Seconds::new(t).to_hours().to_seconds();
        prop_assert!((back.value() - t).abs() < 1e-9 * t.max(1.0));
    }

    #[test]
    fn power_time_energy_triangle(p in 0.0f64..1e4, h in 1e-3f64..100.0) {
        // (p · h) / h = p and (p · h) / p = h.
        let energy = Kilowatts::new(p) * Hours::new(h);
        let p_back = energy / Hours::new(h);
        prop_assert!((p_back.value() - p).abs() < 1e-9 * p.max(1.0));
        if p > 1e-6 {
            let h_back = energy / Kilowatts::new(p);
            prop_assert!((h_back.value() - h).abs() < 1e-9 * h.max(1.0));
        }
    }

    #[test]
    fn distance_speed_time_triangle(d in 1e-3f64..1e5, v in 1e-3f64..100.0) {
        let t = Meters::new(d) / MetersPerSecond::new(v);
        let d_back = MetersPerSecond::new(v) * t;
        prop_assert!((d_back.value() - d).abs() < 1e-9 * d.max(1.0));
    }

    #[test]
    fn electrical_power_commutes(volts in 0.0f64..1000.0, amps in 0.0f64..500.0) {
        let a = Volts::new(volts) * Amperes::new(amps);
        let b = Amperes::new(amps) * Volts::new(volts);
        prop_assert_eq!(a, b);
        prop_assert!((a.value() - volts * amps / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn quantity_algebra_is_consistent(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let x = MegawattHours::new(a);
        let y = MegawattHours::new(b);
        prop_assert_eq!(x + y - y, MegawattHours::new(a + b - b));
        prop_assert_eq!(-(-x), x);
        prop_assert_eq!((x * 2.0) / 2.0, MegawattHours::new(a * 2.0 / 2.0));
        prop_assert_eq!(x.min(y).max(x.min(y)), x.min(y));
    }

    #[test]
    fn soc_saturating_always_lands_in_range(raw in -10.0f64..10.0) {
        let soc = StateOfCharge::saturating(raw);
        prop_assert!(soc >= StateOfCharge::EMPTY && soc <= StateOfCharge::FULL);
        // new() agrees with saturating() inside the valid range.
        if (0.0..=1.0).contains(&raw) {
            prop_assert_eq!(StateOfCharge::new(raw).unwrap(), soc);
        } else {
            prop_assert!(StateOfCharge::new(raw).is_err());
        }
    }

    #[test]
    fn efficiency_validation_is_exact(raw in -2.0f64..2.0) {
        let valid = raw > 0.0 && raw <= 1.0;
        prop_assert_eq!(Efficiency::new(raw).is_ok(), valid);
    }

    #[test]
    fn sums_match_scalar_sums(values in prop::collection::vec(-1e4f64..1e4, 0..50)) {
        let typed: Kilowatts = values.iter().map(|&v| Kilowatts::new(v)).sum();
        let raw: f64 = values.iter().sum();
        prop_assert!((typed.value() - raw).abs() < 1e-6);
    }
}
