//! WPT-substrate pipeline tests: the coupling physics feeding the OLEV
//! spec, and the co-simulation driving charging through real traffic.

use oes::traffic::{CorridorBuilder, EnergyModel, HourlyCounts};
use oes::units::{Efficiency, Meters, OlevId, Seconds, SectionId, StateOfCharge};
use oes::wpt::{ChargingSection, ChargingSpan, CoSimulation, CouplingModel, Olev, OlevSpec};

/// The coupling model plugs into the OLEV spec: a worse link (bigger air
/// gap) lowers Eq. 2's receivable power end to end.
#[test]
fn coupling_physics_propagates_into_eq2() {
    let coupling = CouplingModel::roadway_default();
    let receivable = |gap_m: f64| {
        let eta = coupling.efficiency(Meters::new(gap_m), Meters::new(0.0));
        let spec = OlevSpec {
            transfer_efficiency: eta,
            ..OlevSpec::chevy_spark_default()
        };
        Olev::new(
            OlevId(0),
            spec,
            StateOfCharge::saturating(0.4),
            StateOfCharge::saturating(0.9),
        )
        .receivable_power()
        .value()
    };
    let tight = receivable(0.20);
    let loose = receivable(0.45);
    assert!(tight > loose, "tight gap {tight} !> loose {loose}");
    // The flat 0.85 the paper uses sits between the two operating points.
    let eta_tight = coupling
        .efficiency(Meters::new(0.20), Meters::new(0.0))
        .fraction();
    let eta_loose = coupling
        .efficiency(Meters::new(0.45), Meters::new(0.0))
        .fraction();
    assert!(eta_loose < 0.85 && 0.85 < eta_tight);
}

/// Misalignment matters as much as gap: an OLEV hugging the lane edge
/// receives measurably less.
#[test]
fn misalignment_degrades_like_gap() {
    let c = CouplingModel::roadway_default();
    let centered = c.efficiency(Meters::new(0.2), Meters::new(0.0)).fraction();
    let offset = c.efficiency(Meters::new(0.2), Meters::new(0.4)).fraction();
    assert!(
        offset < centered - 0.05,
        "offset {offset} vs centered {centered}"
    );
    // Efficiency stays a valid ratio everywhere on the domain.
    for gap in [0.1, 0.3, 0.8] {
        for mis in [-0.6, 0.0, 0.6] {
            let eta = c.efficiency(Meters::new(gap), Meters::new(mis));
            assert!(
                eta > Efficiency::new(1e-12).unwrap_or(Efficiency::PERFECT) || eta.fraction() > 0.0
            );
            assert!(eta.fraction() <= 1.0);
        }
    }
}

/// A degraded link slows real charging in the co-simulation.
#[test]
fn cosim_transfer_scales_with_link_efficiency() {
    let run = |eta: f64| {
        let mut builder = CorridorBuilder::new();
        builder
            .blocks(3, Meters::new(250.0))
            .counts(HourlyCounts::new(vec![500]))
            .seed(8);
        let sim = builder.build();
        let spec = OlevSpec {
            transfer_efficiency: Efficiency::new(eta).unwrap(),
            ..OlevSpec::chevy_spark_default()
        };
        let mut co = CoSimulation::new(
            sim,
            EnergyModel::chevy_spark_ev(),
            spec,
            1.0,
            StateOfCharge::saturating(0.5),
            8,
        );
        co.add_span(ChargingSpan {
            edge: oes::traffic::EdgeId(0),
            start: Meters::new(50.0),
            end: Meters::new(250.0),
            section: ChargingSection::paper_default(SectionId(0)),
        });
        co.run_for(Seconds::new(900.0));
        co.total_received().value()
    };
    let good = run(0.90);
    let poor = run(0.45);
    assert!(good > 1.5 * poor, "good {good} !> 1.5x poor {poor}");
}
