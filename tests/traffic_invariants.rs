//! Property-based invariants of the traffic substrate: for arbitrary demand
//! levels, signal timings, and seeds, the simulation never produces
//! overlapping vehicles, out-of-range kinematics, or bookkeeping leaks.

use oes::traffic::{
    CorridorBuilder, HourlyCounts, PoissonArrivals, SectionPlacement, SignalPlan, Simulation,
    SimulationConfig, VehicleParams,
};
use oes::units::{Meters, MetersPerSecond, Seconds};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn corridor_sim(demand: u32, green: f64, red: f64, seed: u64) -> Simulation {
    let mut builder = CorridorBuilder::new();
    builder
        .blocks(3, Meters::new(200.0))
        .speed_limit(MetersPerSecond::new(14.0))
        .signal(Seconds::new(green), Seconds::new(red))
        .detector(SectionPlacement::BeforeLight, Meters::new(150.0))
        .hourly_counts(vec![demand])
        .seed(seed);
    builder.build()
}

fn assert_no_overlaps(sim: &Simulation) {
    let mut per_edge: BTreeMap<(usize, u32), Vec<(f64, f64)>> = BTreeMap::new();
    for v in sim.vehicles() {
        per_edge
            .entry((v.current_edge().0, v.lane))
            .or_default()
            .push((v.position.value(), v.params.length.value()));
    }
    for (edge, list) in per_edge.iter_mut() {
        list.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in list.windows(2) {
            let (follower_front, _) = w[0];
            let (leader_front, leader_len) = w[1];
            assert!(
                follower_front <= leader_front - leader_len + 1e-6,
                "overlap on lane {edge:?}: {follower_front} vs rear {}",
                leader_front - leader_len
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn no_collisions_for_arbitrary_demand_and_signals(
        demand in 50u32..1500,
        green in 10.0f64..60.0,
        red in 5.0f64..90.0,
        seed in 0u64..1000,
    ) {
        let mut sim = corridor_sim(demand, green, red, seed);
        for _ in 0..400 {
            sim.step();
        }
        assert_no_overlaps(&sim);
        // Kinematic sanity for every vehicle.
        for v in sim.vehicles() {
            prop_assert!(v.speed.value() >= 0.0);
            prop_assert!(v.speed.value() <= 14.0 + 1e-9, "speed {}", v.speed.value());
            prop_assert!(v.position.value() >= 0.0);
            prop_assert!(v.position.value() <= 200.0 + 1e-9);
        }
        // Conservation.
        prop_assert_eq!(
            sim.spawned(),
            sim.active_count() as u64 + sim.exited()
        );
    }

    #[test]
    fn determinism_for_arbitrary_seeds(seed in 0u64..500) {
        let run = |seed: u64| {
            let mut sim = corridor_sim(700, 30.0, 40.0, seed);
            sim.run_for(Seconds::new(300.0));
            let state: Vec<(u64, usize, u64)> = sim
                .vehicles()
                .map(|v| (v.id.0, v.route_index, v.position.value().to_bits()))
                .collect();
            (sim.spawned(), sim.exited(), state)
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn poisson_demand_is_order_preserving(
        counts in prop::collection::vec(1u32..2000, 1..6),
        seed in 0u64..100,
    ) {
        let mut arrivals = PoissonArrivals::new(HourlyCounts::new(counts), seed);
        let mut prev = Seconds::ZERO;
        for _ in 0..200 {
            let t = arrivals.next_arrival();
            prop_assert!(t > prev);
            prev = t;
        }
    }
}

/// A permanently red signal can never leak a vehicle through, whatever the
/// demand level.
#[test]
fn red_wall_is_impermeable() {
    for demand in [100u32, 800, 1500] {
        let mut net = oes::traffic::RoadNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        let c = net.add_node();
        let e1 = net
            .add_edge(a, b, Meters::new(300.0), MetersPerSecond::new(15.0))
            .unwrap();
        let e2 = net
            .add_edge(b, c, Meters::new(300.0), MetersPerSecond::new(15.0))
            .unwrap();
        let mut sim = Simulation::new(net, SimulationConfig::default(), 4);
        sim.add_signal(b, SignalPlan::always_red());
        sim.add_demand(
            PoissonArrivals::new(HourlyCounts::new(vec![demand]), 4),
            vec![e1, e2],
            VehicleParams::passenger_car(),
        );
        sim.run_for(Seconds::new(900.0));
        assert_eq!(
            sim.exited(),
            0,
            "vehicle escaped a permanent red at demand {demand}"
        );
        for v in sim.vehicles() {
            assert_eq!(v.current_edge(), e1, "vehicle crossed the red stop line");
        }
    }
}
