//! Workspace-level telemetry guarantees:
//!
//! - **Golden journal** — two same-seed, same-scenario decentralized runs
//!   emit *byte-identical* JSONL journals (virtual clock + deterministic
//!   instrumentation points), so a stored journal is a regression oracle.
//! - **Observer neutrality** — attaching a live recorder must not perturb
//!   the game: welfare, schedule, and trajectory are bit-equal with and
//!   without instrumentation.
//! - **Journal/outcome agreement** — per-iteration gauges in the journal
//!   line up with the outcome's update count and final welfare.

use std::sync::Arc;

use oes::game::{DistributedGame, GameBuilder, NonlinearPricing, PricingPolicy, UpdateOrder};
use oes::telemetry::{count_events, JournalRecorder, RingBufferRecorder, Sample, Telemetry};
use oes::units::Kilowatts;

fn game() -> oes::game::Game {
    GameBuilder::new()
        .sections(12, Kilowatts::new(40.0))
        .olevs(6, Kilowatts::new(50.0))
        .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
            15.0,
        )))
        .eta(0.9)
        .build()
        .expect("valid scenario")
}

fn journaled_run(seed: u64) -> (String, oes::game::Outcome) {
    let journal = Arc::new(JournalRecorder::new("golden", seed));
    let mut g = game();
    let outcome = DistributedGame::new(&mut g)
        .telemetry(Telemetry::new(journal.clone()))
        .run(10_000)
        .expect("clean run converges");
    (journal.to_jsonl(), outcome)
}

#[test]
fn same_seed_runs_emit_byte_identical_journals() {
    let (first, out_a) = journaled_run(23);
    let (second, out_b) = journaled_run(23);
    assert!(out_a.converged() && out_b.converged());
    assert_eq!(first, second, "same-seed journals must match byte-for-byte");
    // The header is stamped, first, and exact.
    assert_eq!(
        first.lines().next().expect("non-empty"),
        "{\"journal\":\"oes\",\"scenario\":\"golden\",\"seed\":23}"
    );
    // A different stamp is visible in the header alone.
    let (other, _) = journaled_run(24);
    assert_ne!(first, other);
}

#[test]
fn same_seed_in_process_runs_emit_byte_identical_journals() {
    // The incremental-state engine must stay telemetry-neutral: two
    // identically seeded in-process runs emit byte-identical journals, and
    // the journaled welfare is the outcome's welfare bit-for-bit.
    let run = |seed: u64| {
        let journal = Arc::new(JournalRecorder::new("engine-golden", seed));
        let mut g = game();
        let outcome = g
            .run_with(
                UpdateOrder::RoundRobin,
                10_000,
                &Telemetry::new(journal.clone()),
            )
            .expect("clean run converges");
        (journal.to_jsonl(), outcome)
    };
    let (first, out_a) = run(5);
    let (second, out_b) = run(5);
    assert!(out_a.converged() && out_b.converged());
    assert_eq!(first, second, "same-seed journals must match byte-for-byte");
    assert_eq!(count_events(&first, "engine.welfare"), out_a.updates());
    let last_welfare = first
        .lines()
        .filter(|l| l.contains("\"name\":\"engine.welfare\""))
        .last()
        .expect("welfare gauges exist");
    let value: f64 = last_welfare
        .rsplit("\"value\":")
        .next()
        .and_then(|t| t.trim_end_matches('}').parse().ok())
        .expect("gauge value parses");
    assert_eq!(value.to_bits(), out_a.final_welfare().to_bits());
}

#[test]
fn journal_agrees_with_the_outcome() {
    let (jsonl, outcome) = journaled_run(7);
    // One welfare gauge per applied update, plus spans in lockstep.
    assert_eq!(count_events(&jsonl, "game.welfare"), outcome.updates());
    assert_eq!(
        count_events(&jsonl, "grid.apply"),
        2 * outcome.updates(),
        "span enter + exit per applied update"
    );
    assert_eq!(count_events(&jsonl, "game.converged"), 1);
    // The last welfare gauge is the outcome's final welfare.
    let last_welfare = jsonl
        .lines()
        .filter(|l| l.contains("\"name\":\"game.welfare\""))
        .last()
        .expect("welfare gauges exist");
    let value: f64 = last_welfare
        .rsplit("\"value\":")
        .next()
        .and_then(|t| t.trim_end_matches('}').parse().ok())
        .expect("gauge value parses");
    assert_eq!(value.to_bits(), outcome.final_welfare().to_bits());
}

#[test]
fn live_recorder_does_not_change_the_outcome() {
    let mut plain = game();
    let baseline = DistributedGame::new(&mut plain)
        .run(10_000)
        .expect("clean run converges");
    let plain_schedule = plain.schedule().clone();

    let ring = Arc::new(RingBufferRecorder::new(1 << 16));
    let mut instrumented = game();
    let observed = DistributedGame::new(&mut instrumented)
        .telemetry(Telemetry::new(ring.clone()))
        .run(10_000)
        .expect("clean run converges");

    assert_eq!(baseline, observed, "observation must not perturb the game");
    assert_eq!(plain_schedule, *instrumented.schedule());
    assert_eq!(
        plain.welfare().to_bits(),
        instrumented.welfare().to_bits(),
        "welfare must be bit-identical under observation"
    );
    // And the ring actually saw the run.
    let events = ring.events();
    assert!(!events.is_empty());
    let applies = events
        .iter()
        .filter(|e| e.name == "grid.apply" && matches!(e.sample, Sample::SpanExit { .. }))
        .count();
    assert_eq!(applies, observed.updates());
}
