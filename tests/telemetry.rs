//! Workspace-level telemetry guarantees:
//!
//! - **Golden journal** — two same-seed, same-scenario decentralized runs
//!   emit *byte-identical* JSONL journals (virtual clock + deterministic
//!   instrumentation points), so a stored journal is a regression oracle.
//! - **Observer neutrality** — attaching a live recorder must not perturb
//!   the game: welfare, schedule, and trajectory are bit-equal with and
//!   without instrumentation.
//! - **Journal/outcome agreement** — per-iteration gauges in the journal
//!   line up with the outcome's update count and final welfare.

use std::sync::Arc;

use oes::game::{DistributedGame, GameBuilder, NonlinearPricing, PricingPolicy, UpdateOrder};
use oes::telemetry::{count_events, JournalRecorder, RingBufferRecorder, Sample, Telemetry};
use oes::traffic::{GridNetworkBuilder, HourlyCounts, ScanMode};
use oes::units::Kilowatts;

fn game() -> oes::game::Game {
    GameBuilder::new()
        .sections(12, Kilowatts::new(40.0))
        .olevs(6, Kilowatts::new(50.0))
        .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
            15.0,
        )))
        .eta(0.9)
        .build()
        .expect("valid scenario")
}

fn journaled_run(seed: u64) -> (String, oes::game::Outcome) {
    let journal = Arc::new(JournalRecorder::new("golden", seed));
    let mut g = game();
    let outcome = DistributedGame::new(&mut g)
        .telemetry(Telemetry::new(journal.clone()))
        .run(10_000)
        .expect("clean run converges");
    (journal.to_jsonl(), outcome)
}

#[test]
fn same_seed_runs_emit_byte_identical_journals() {
    let (first, out_a) = journaled_run(23);
    let (second, out_b) = journaled_run(23);
    assert!(out_a.converged() && out_b.converged());
    assert_eq!(first, second, "same-seed journals must match byte-for-byte");
    // The header is stamped, first, and exact.
    assert_eq!(
        first.lines().next().expect("non-empty"),
        "{\"journal\":\"oes\",\"scenario\":\"golden\",\"seed\":23}"
    );
    // A different stamp is visible in the header alone.
    let (other, _) = journaled_run(24);
    assert_ne!(first, other);
}

#[test]
fn same_seed_in_process_runs_emit_byte_identical_journals() {
    // The incremental-state engine must stay telemetry-neutral: two
    // identically seeded in-process runs emit byte-identical journals, and
    // the journaled welfare is the outcome's welfare bit-for-bit.
    let run = |seed: u64| {
        let journal = Arc::new(JournalRecorder::new("engine-golden", seed));
        let mut g = game();
        let outcome = g
            .run_with(
                UpdateOrder::RoundRobin,
                10_000,
                &Telemetry::new(journal.clone()),
            )
            .expect("clean run converges");
        (journal.to_jsonl(), outcome)
    };
    let (first, out_a) = run(5);
    let (second, out_b) = run(5);
    assert!(out_a.converged() && out_b.converged());
    assert_eq!(first, second, "same-seed journals must match byte-for-byte");
    assert_eq!(count_events(&first, "engine.welfare"), out_a.updates());
    let last_welfare = first
        .lines()
        .filter(|l| l.contains("\"name\":\"engine.welfare\""))
        .last()
        .expect("welfare gauges exist");
    let value: f64 = last_welfare
        .rsplit("\"value\":")
        .next()
        .and_then(|t| t.trim_end_matches('}').parse().ok())
        .expect("gauge value parses");
    assert_eq!(value.to_bits(), out_a.final_welfare().to_bits());
}

#[test]
fn journal_agrees_with_the_outcome() {
    let (jsonl, outcome) = journaled_run(7);
    // One welfare gauge per applied update, plus spans in lockstep.
    assert_eq!(count_events(&jsonl, "game.welfare"), outcome.updates());
    assert_eq!(
        count_events(&jsonl, "grid.apply"),
        2 * outcome.updates(),
        "span enter + exit per applied update"
    );
    assert_eq!(count_events(&jsonl, "game.converged"), 1);
    // The last welfare gauge is the outcome's final welfare.
    let last_welfare = jsonl
        .lines()
        .filter(|l| l.contains("\"name\":\"game.welfare\""))
        .last()
        .expect("welfare gauges exist");
    let value: f64 = last_welfare
        .rsplit("\"value\":")
        .next()
        .and_then(|t| t.trim_end_matches('}').parse().ok())
        .expect("gauge value parses");
    assert_eq!(value.to_bits(), outcome.final_welfare().to_bits());
}

#[test]
fn live_recorder_does_not_change_the_outcome() {
    let mut plain = game();
    let baseline = DistributedGame::new(&mut plain)
        .run(10_000)
        .expect("clean run converges");
    let plain_schedule = plain.schedule().clone();

    let ring = Arc::new(RingBufferRecorder::new(1 << 16));
    let mut instrumented = game();
    let observed = DistributedGame::new(&mut instrumented)
        .telemetry(Telemetry::new(ring.clone()))
        .run(10_000)
        .expect("clean run converges");

    assert_eq!(baseline, observed, "observation must not perturb the game");
    assert_eq!(plain_schedule, *instrumented.schedule());
    assert_eq!(
        plain.welfare().to_bits(),
        instrumented.welfare().to_bits(),
        "welfare must be bit-identical under observation"
    );
    // And the ring actually saw the run.
    let events = ring.events();
    assert!(!events.is_empty());
    let applies = events
        .iter()
        .filter(|e| e.name == "grid.apply" && matches!(e.sample, Sample::SpanExit { .. }))
        .count();
    assert_eq!(applies, observed.updates());
}

/// A journaled grid-traffic run under one scan mode.
fn traffic_journal(seed: u64, mode: ScanMode) -> (String, u64, Vec<u64>) {
    let journal = Arc::new(JournalRecorder::new("traffic-golden", seed));
    let mut g = GridNetworkBuilder::new().size(4, 4).seed(seed).build();
    assert!(g.add_od_demand((0, 0), (3, 3), HourlyCounts::new(vec![900])));
    assert!(g.add_od_demand((0, 1), (3, 2), HourlyCounts::new(vec![700])));
    g.sim.set_telemetry(Telemetry::new(journal.clone()));
    // Force a journaled naive→indexed switch so the rebuild is visible.
    g.sim.set_scan_mode(ScanMode::NaiveScan);
    g.sim.set_scan_mode(mode);
    for _ in 0..180 {
        g.sim.step();
    }
    let trace = g
        .sim
        .vehicles()
        .flat_map(|v| [v.id.0, v.position.value().to_bits()])
        .collect();
    (journal.to_jsonl(), g.sim.spawned(), trace)
}

#[test]
fn traffic_journals_are_byte_identical_and_cover_the_index() {
    // Same-seed indexed runs journal byte-for-byte, and the index
    // instrumentation actually fires.
    let (first, spawned, trace_a) = traffic_journal(31, ScanMode::Indexed);
    let (second, _, _) = traffic_journal(31, ScanMode::Indexed);
    assert_eq!(first, second, "same-seed journals must match byte-for-byte");
    assert!(spawned > 0, "scenario must spawn traffic");
    assert!(
        count_events(&first, "sim.index.queries") > 0,
        "indexed runs must journal their neighbor queries"
    );
    assert!(
        count_events(&first, "sim.index.rebuilds") > 0,
        "switching into indexed mode must journal the rebuild"
    );

    // The query and clamp counters are mode-independent by the
    // determinism contract: the naive journal carries the same
    // `sim.index.queries`/`sim.index.clamps` lines (only the
    // indexed-only rebuild/repair lines may differ) and the same physics.
    let (naive, _, trace_b) = traffic_journal(31, ScanMode::NaiveScan);
    assert_eq!(trace_a, trace_b, "modes must agree bit-for-bit");
    let strip = |j: &str| {
        j.lines()
            .filter(|l| {
                !l.contains("\"name\":\"sim.index.rebuilds\"")
                    && !l.contains("\"name\":\"sim.index.repairs\"")
            })
            .map(str::to_owned)
            .collect::<Vec<_>>()
    };
    assert_eq!(
        strip(&first),
        strip(&naive),
        "journals must agree outside rebuild/repair lines"
    );
}

#[test]
fn traffic_recorder_does_not_change_the_physics() {
    let run = |telemetry: Option<Telemetry>| {
        let mut g = GridNetworkBuilder::new().size(4, 4).seed(17).build();
        assert!(g.add_od_demand((0, 0), (3, 3), HourlyCounts::new(vec![800])));
        if let Some(t) = telemetry {
            g.sim.set_telemetry(t);
        }
        for _ in 0..150 {
            g.sim.step();
        }
        g.sim
            .vehicles()
            .flat_map(|v| {
                [
                    v.id.0,
                    u64::from(v.lane),
                    v.position.value().to_bits(),
                    v.speed.value().to_bits(),
                ]
            })
            .collect::<Vec<u64>>()
    };
    let plain = run(None);
    let ring = Arc::new(RingBufferRecorder::new(1 << 16));
    let observed = run(Some(Telemetry::new(ring.clone())));
    assert_eq!(plain, observed, "observation must not perturb the traffic");
    assert!(ring.counter_total("sim.index.queries") > 0);
}
