//! Integration tests for Theorem IV.1: the asynchronous best-response
//! dynamics converge to the unique socially optimal schedule, regardless of
//! update order or runtime.

use oes::game::{
    solve_centralized, DistributedGame, GameBuilder, LogSatisfaction, NonlinearPricing,
    PricingPolicy, UpdateOrder,
};
use oes::units::Kilowatts;

fn builder(sections: usize, olevs: usize) -> GameBuilder {
    GameBuilder::new()
        .sections(sections, Kilowatts::new(60.0))
        .olevs(olevs, Kilowatts::new(80.0))
        .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
            15.0,
        )))
}

#[test]
fn round_robin_and_random_orders_agree() {
    let mut a = builder(20, 10).build().unwrap();
    let mut b = builder(20, 10).build().unwrap();
    let mut c = builder(20, 10).build().unwrap();
    assert!(a.run(UpdateOrder::RoundRobin, 5000).unwrap().converged());
    assert!(b
        .run(UpdateOrder::Random { seed: 1 }, 5000)
        .unwrap()
        .converged());
    assert!(c
        .run(UpdateOrder::Random { seed: 99 }, 5000)
        .unwrap()
        .converged());
    assert!((a.welfare() - b.welfare()).abs() < 1e-5);
    assert!((a.welfare() - c.welfare()).abs() < 1e-5);
    // Not just the welfare: the schedules themselves coincide (uniqueness).
    for (la, lb) in a.section_loads().iter().zip(b.section_loads()) {
        assert!((la - lb).abs() < 1e-3, "loads differ: {la} vs {lb}");
    }
}

#[test]
fn threaded_runtime_matches_in_process_engine() {
    let mut engine = builder(15, 8).build().unwrap();
    let mut threaded = builder(15, 8).build().unwrap();
    engine.run(UpdateOrder::RoundRobin, 5000).unwrap();
    let out = DistributedGame::new(&mut threaded).run(5000).unwrap();
    assert!(out.converged());
    assert!((engine.welfare() - threaded.welfare()).abs() < 1e-9);
}

#[test]
fn decentralized_equilibrium_is_the_welfare_maximizer() {
    // The headline claim: best responses with *payments* end up maximizing
    // *welfare*, verified against the game-free centralized solver.
    let mut game = builder(12, 6).build().unwrap();
    game.run(UpdateOrder::RoundRobin, 5000).unwrap();
    let central = solve_centralized(&builder(12, 6).build().unwrap(), 50_000);
    let rel = (game.welfare() - central.welfare).abs() / central.welfare.abs().max(1.0);
    assert!(
        rel < 2e-3,
        "decentralized {} vs centralized {} (rel {rel})",
        game.welfare(),
        central.welfare
    );
    // And no one can profitably deviate: every best response is a no-op.
    for n in 0..game.olev_count() {
        let change = game.update_olev(n).unwrap();
        assert!(change < 1e-5, "OLEV {n} still wants to move by {change}");
    }
}

#[test]
fn heterogeneous_olevs_converge_and_sort_by_eagerness() {
    let mut game = GameBuilder::new()
        .sections(10, Kilowatts::new(50.0))
        .olev_with(Kilowatts::new(100.0), Box::new(LogSatisfaction::new(4.0)))
        .olev_with(Kilowatts::new(100.0), Box::new(LogSatisfaction::new(2.0)))
        .olev_with(Kilowatts::new(100.0), Box::new(LogSatisfaction::new(1.0)))
        .build()
        .unwrap();
    assert!(game.run(UpdateOrder::RoundRobin, 5000).unwrap().converged());
    let totals: Vec<f64> = (0..3)
        .map(|n| game.schedule().olev_total(oes::units::OlevId(n)))
        .collect();
    assert!(totals[0] > totals[1] && totals[1] > totals[2], "{totals:?}");
}

#[test]
fn welfare_never_decreases_along_the_trajectory() {
    let mut game = builder(10, 8).build().unwrap();
    let out = game.run(UpdateOrder::Random { seed: 3 }, 3000).unwrap();
    let mut last = f64::NEG_INFINITY;
    for s in &out.trajectory {
        assert!(
            s.welfare >= last - 1e-9,
            "welfare dropped at update {}",
            s.update
        );
        last = s.welfare;
    }
}

#[test]
fn convergence_from_a_warm_start() {
    // Start from an arbitrary feasible schedule instead of zero: same
    // equilibrium (global, not path-dependent).
    let mut cold = builder(8, 4).build().unwrap();
    cold.run(UpdateOrder::RoundRobin, 5000).unwrap();

    let mut warm = builder(8, 4).build().unwrap();
    let mut schedule = oes::game::PowerSchedule::zeros(4, 8);
    for n in 0..4 {
        let row: Vec<f64> = (0..8).map(|c| ((n * 8 + c) % 5) as f64).collect();
        schedule.set_row(oes::units::OlevId(n), &row);
    }
    warm.set_schedule(schedule);
    warm.run(UpdateOrder::RoundRobin, 5000).unwrap();
    assert!((cold.welfare() - warm.welfare()).abs() < 1e-5);
}

#[test]
fn more_olevs_need_more_updates() {
    // Fig. 5(d)'s qualitative claim: larger N converges in more updates.
    let updates = |n: usize| {
        let mut g = GameBuilder::new()
            .sections(30, Kilowatts::new(60.0))
            .olevs_weighted(n, Kilowatts::new(70.0), 3.0)
            .build()
            .unwrap();
        g.run(UpdateOrder::RoundRobin, 20_000).unwrap().updates()
    };
    let (u10, u40) = (updates(10), updates(40));
    assert!(u40 > u10, "N=40 took {u40} vs N=10 {u10}");
}
