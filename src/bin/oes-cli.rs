//! A small command-line front end over the OES library.
//!
//! ```sh
//! cargo run --release --bin oes-cli -- help
//! cargo run --release --bin oes-cli -- grid-day 42
//! cargo run --release --bin oes-cli -- game 30 15 nonlinear
//! cargo run --release --bin oes-cli -- study 6
//! cargo run --release --bin oes-cli -- day 0.1
//! ```

use std::process::ExitCode;

use oes::daily::{run_day, DailyConfig};
use oes::game::{GameBuilder, LinearPricing, NonlinearPricing, PricingPolicy, UpdateOrder};
use oes::grid::{GridOperator, OperatorConfig};
use oes::traffic::HourlyCounts;
use oes::units::Kilowatts;
use oes::wpt::IntersectionStudy;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("grid-day") => grid_day(&args[1..]),
        Some("game") => game(&args[1..]),
        Some("study") => study(&args[1..]),
        Some("day") => day(&args[1..]),
        Some("help") | None => {
            print_help();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!("oes-cli — opportunistic energy sharing toolbox");
    println!();
    println!("commands:");
    println!("  grid-day [seed]                simulate a NYISO-like day (Fig. 2)");
    println!("  game [sections] [olevs] [policy]  run one pricing game (policy: nonlinear|linear)");
    println!("  study [hours]                  intersection-time study (Fig. 3)");
    println!("  day [participation]            full daily pipeline");
}

fn parse<T: std::str::FromStr>(args: &[String], idx: usize, default: T) -> Result<T, String> {
    match args.get(idx) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("could not parse argument `{raw}`")),
    }
}

fn grid_day(args: &[String]) -> Result<(), String> {
    let seed: u64 = parse(args, 0, 42)?;
    let day = GridOperator::new(OperatorConfig::nyiso_like(), seed).simulate_day();
    let (lo, hi) = day.lbmp_range();
    println!("seed {seed}:");
    println!(
        "  load band        {:.1} .. {:.1} MWh",
        day.min_integrated_load().value(),
        day.max_integrated_load().value()
    );
    println!(
        "  max |deficiency| {:.1} MWh",
        day.max_abs_deficiency().value()
    );
    println!(
        "  LBMP             {:.2} .. {:.2} $/MWh",
        lo.value(),
        hi.value()
    );
    println!(
        "  ancillary mean   {:.2} $/MW",
        day.mean_ancillary_price().value()
    );
    Ok(())
}

fn game(args: &[String]) -> Result<(), String> {
    let sections: usize = parse(args, 0, 20)?;
    let olevs: usize = parse(args, 1, 10)?;
    let policy = match args.get(2).map(String::as_str) {
        None | Some("nonlinear") => PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
        Some("linear") => PricingPolicy::Linear(LinearPricing::paper_default(15.0)),
        Some(other) => return Err(format!("unknown policy `{other}`")),
    };
    let mut game = GameBuilder::new()
        .sections(sections, Kilowatts::new(40.0))
        .olevs(olevs, Kilowatts::new(60.0))
        .pricing(policy)
        .build()
        .map_err(|e| e.to_string())?;
    let outcome = game
        .run(UpdateOrder::RoundRobin, 50_000)
        .map_err(|e| e.to_string())?;
    println!("converged      {}", outcome.converged());
    println!("updates        {}", outcome.updates());
    println!("welfare        {:.4}", game.welfare());
    println!("congestion     {:.4}", game.system_congestion());
    println!(
        "unit payment   {:.2} $/MWh",
        game.unit_payment_dollars_per_mwh()
    );
    Ok(())
}

fn study(args: &[String]) -> Result<(), String> {
    let hours: usize = parse(args, 0, 24)?;
    let report = IntersectionStudy::new()
        .counts(HourlyCounts::nyc_arterial_like(450, 13))
        .hours(hours)
        .seed(13)
        .run();
    println!("{} vehicles over {hours} h", report.vehicles_entered);
    println!(
        "at light : {:.1} h dwell, {:.0} kWh",
        report.at_light.total_dwell().to_hours().value(),
        report.at_light.total_energy().value()
    );
    println!(
        "at middle: {:.1} h dwell, {:.0} kWh",
        report.at_middle.total_dwell().to_hours().value(),
        report.at_middle.total_energy().value()
    );
    Ok(())
}

fn day(args: &[String]) -> Result<(), String> {
    let participation: f64 = parse(args, 0, 0.1)?;
    if !(0.0..=1.0).contains(&participation) {
        return Err("participation must be in [0, 1]".to_owned());
    }
    let config = DailyConfig {
        participation,
        ..DailyConfig::default()
    };
    let report = run_day(&config).map_err(|e| e.to_string())?;
    println!("energy to OLEVs {:.2} MWh", report.total_energy_mwh());
    println!("grid revenue    ${:.2}", report.total_revenue());
    println!(
        "peak deficiency +{:.1} MWh from OLEV load",
        report.added_peak_deficiency_mwh()
    );
    Ok(())
}
