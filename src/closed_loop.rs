//! The full paper system, closed loop: microscopic traffic, live batteries,
//! and the pricing game scheduling actual transfer power.
//!
//! [`crate::wpt::CoSimulation`] charges at the span's full rating —
//! uncoordinated. Here the smart grid is in the loop: every `replan_every`
//! seconds it collects the OLEVs currently on the approach (their Eq. 2
//! bounds from *live* SOC), plays the pricing game, and the resulting
//! per-OLEV power — not the line rating — is what flows while that OLEV
//! overlaps an energized span. Between replans the allocation stands, as it
//! would over a V2I round-trip.

use std::collections::BTreeMap;

use oes_game::{GameBuilder, NonlinearPricing, PricingPolicy, UpdateOrder};
use oes_traffic::energy::EnergyModel;
use oes_traffic::sim::Simulation;
use oes_traffic::vehicle::VehicleId;
use oes_units::{KilowattHours, Kilowatts, OlevId, Seconds, StateOfCharge};
use oes_wpt::cosim::ChargingSpan;
use oes_wpt::{Olev, OlevSpec};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of the closed loop.
#[derive(Debug, Clone, Copy)]
pub struct ClosedLoopConfig {
    /// Probability a spawned vehicle is a charging OLEV.
    pub participation: f64,
    /// Spawn state of charge.
    pub initial_soc: StateOfCharge,
    /// Trip SOC requirement (Eq. 2's `SOC_req`).
    pub soc_required: StateOfCharge,
    /// Seconds between grid replans (a V2I negotiation cadence).
    pub replan_every: Seconds,
    /// Per-section game capacity (kW) — Eq. 1 at the corridor's speed.
    pub section_capacity: Kilowatts,
    /// LBMP β for the pricing policy, $/MWh.
    pub beta: f64,
    /// Safety factor η.
    pub eta: f64,
    /// RNG seed (participation draws).
    pub seed: u64,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        Self {
            participation: 0.5,
            initial_soc: StateOfCharge::saturating(0.5),
            soc_required: StateOfCharge::saturating(0.9),
            replan_every: Seconds::new(30.0),
            section_capacity: Kilowatts::new(25.0),
            beta: 15.0,
            eta: 0.9,
            seed: 0,
        }
    }
}

/// Aggregate results of a closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClosedLoopStats {
    /// Energy transferred under game allocations (kWh).
    pub energy_transferred: f64,
    /// Payments collected by the grid ($).
    pub revenue: f64,
    /// Number of grid replans executed.
    pub replans: usize,
    /// Replans that failed and fell back to the previous allocation.
    pub failed_replans: usize,
    /// Peak number of OLEVs in one game.
    pub peak_players: usize,
    /// Highest per-section congestion degree any replan scheduled.
    pub peak_congestion: f64,
}

/// The closed-loop co-simulation.
pub struct ClosedLoop {
    sim: Simulation,
    spans: Vec<ChargingSpan>,
    energy_model: EnergyModel,
    spec: OlevSpec,
    config: ClosedLoopConfig,
    rng: ChaCha8Rng,
    fleet: BTreeMap<VehicleId, Olev>,
    seen: BTreeMap<VehicleId, bool>,
    prev_speed: BTreeMap<VehicleId, f64>,
    /// Standing per-OLEV allocation (kW) from the last replan.
    allocation: BTreeMap<VehicleId, f64>,
    since_replan: f64,
    stats: ClosedLoopStats,
    /// The error of the most recent failed replan, if any.
    last_replan_error: Option<oes_game::GameError>,
}

impl core::fmt::Debug for ClosedLoop {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ClosedLoop")
            .field("active_olevs", &self.fleet.len())
            .field("replans", &self.stats.replans)
            .finish_non_exhaustive()
    }
}

impl ClosedLoop {
    /// Wraps a traffic simulation.
    #[must_use]
    pub fn new(sim: Simulation, spec: OlevSpec, config: ClosedLoopConfig) -> Self {
        Self {
            sim,
            spans: Vec::new(),
            energy_model: EnergyModel::chevy_spark_ev(),
            spec,
            config,
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            fleet: BTreeMap::new(),
            seen: BTreeMap::new(),
            prev_speed: BTreeMap::new(),
            allocation: BTreeMap::new(),
            since_replan: f64::INFINITY, // replan immediately on first step
            stats: ClosedLoopStats::default(),
            last_replan_error: None,
        }
    }

    /// Adds an energized span.
    pub fn add_span(&mut self, span: ChargingSpan) {
        self.spans.push(span);
    }

    /// Read access to the traffic simulation.
    #[must_use]
    pub fn traffic(&self) -> &Simulation {
        &self.sim
    }

    /// Mutable access (attach demand, signals).
    pub fn traffic_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }

    /// Run statistics so far.
    #[must_use]
    pub fn stats(&self) -> ClosedLoopStats {
        self.stats
    }

    /// Currently active OLEVs.
    #[must_use]
    pub fn active_olevs(&self) -> usize {
        self.fleet.len()
    }

    /// The error of the most recent failed replan, if any replan has failed.
    #[must_use]
    pub fn last_replan_error(&self) -> Option<&oes_game::GameError> {
        self.last_replan_error.as_ref()
    }

    /// Advances one traffic step, replanning the game on cadence.
    ///
    /// A failed replan degrades gracefully: the previous standing
    /// allocation stays in force (as it would over a dead V2I round-trip),
    /// the failure is counted in [`ClosedLoopStats::failed_replans`], and
    /// the error is kept in [`Self::last_replan_error`].
    ///
    /// # Errors
    ///
    /// None currently; the `Result` is kept for traffic-side failures.
    pub fn step(&mut self) -> Result<(), oes_game::GameError> {
        let dt = self.sim.config().step;
        let speeds_before: BTreeMap<VehicleId, f64> = self
            .sim
            .vehicles()
            .map(|v| (v.id, v.speed.value()))
            .collect();
        self.sim.step();

        // Classify arrivals, drain batteries with the speed trace.
        let states: Vec<(VehicleId, oes_traffic::EdgeId, f64, f64, f64)> = self
            .sim
            .vehicles()
            .map(|v| {
                (
                    v.id,
                    v.current_edge(),
                    v.position.value(),
                    v.params.length.value(),
                    v.speed.value(),
                )
            })
            .collect();
        for (id, edge, pos, len, speed) in &states {
            if !self.seen.contains_key(id) {
                let is_olev = self.rng.gen_bool(self.config.participation);
                self.seen.insert(*id, is_olev);
                if is_olev {
                    self.fleet.insert(
                        *id,
                        Olev::new(
                            OlevId(id.0 as usize),
                            self.spec,
                            self.config.initial_soc,
                            self.config.soc_required,
                        ),
                    );
                }
            }
            let Some(olev) = self.fleet.get_mut(id) else {
                continue;
            };
            let before = self.prev_speed.get(id).copied().unwrap_or(*speed);
            let drain = self.energy_model.energy_over_step(
                oes_units::MetersPerSecond::new(before),
                oes_units::MetersPerSecond::new(*speed),
                dt,
            );
            if drain.value() >= 0.0 {
                olev.battery_mut().discharge(drain);
            } else {
                olev.battery_mut().charge(-drain);
            }
            // Transfer at the *allocated* power while over a span.
            let allocated = self.allocation.get(id).copied().unwrap_or(0.0);
            if allocated > 0.0 {
                let on_span = self.spans.iter().any(|s| {
                    s.covers(
                        *edge,
                        oes_units::Meters::new(*pos),
                        oes_units::Meters::new(*len),
                    )
                });
                if on_span {
                    let offered = allocated
                        * dt.to_hours().value()
                        * self.spec.transfer_efficiency.fraction();
                    let headroom = (self.spec.soc_max.fraction() - olev.battery().soc().fraction())
                        .max(0.0)
                        * self.spec.battery.energy_capacity().value();
                    let absorbed = olev
                        .battery_mut()
                        .charge(KilowattHours::new(offered.min(headroom)));
                    self.stats.energy_transferred += absorbed.value();
                }
            }
        }
        for (id, _, _, _, speed) in &states {
            self.prev_speed.insert(*id, *speed);
        }
        let _ = speeds_before;

        // Retire exited OLEVs.
        let active: Vec<VehicleId> = states.iter().map(|s| s.0).collect();
        let gone: Vec<VehicleId> = self
            .fleet
            .keys()
            .filter(|id| !active.contains(id))
            .copied()
            .collect();
        for id in gone {
            self.fleet.remove(&id);
            self.allocation.remove(&id);
            self.prev_speed.remove(&id);
        }

        // Replan on cadence; a failed round keeps the standing allocation.
        self.since_replan += dt.value();
        if self.since_replan >= self.config.replan_every.value() {
            self.since_replan = 0.0;
            if let Err(error) = self.replan() {
                self.stats.failed_replans += 1;
                self.last_replan_error = Some(error);
            }
        }
        Ok(())
    }

    /// Runs the loop for a duration.
    ///
    /// # Errors
    ///
    /// As for [`Self::step`].
    pub fn run_for(&mut self, duration: Seconds) -> Result<(), oes_game::GameError> {
        let end = self.sim.time() + duration;
        while self.sim.time() < end {
            self.step()?;
        }
        Ok(())
    }

    /// One grid replan: the active OLEVs play the game with live Eq. 2
    /// bounds; the equilibrium totals become standing allocations. The
    /// standing allocation is replaced only once the round has fully
    /// succeeded, so a failure leaves the previous plan intact.
    fn replan(&mut self) -> Result<(), oes_game::GameError> {
        let players: Vec<(VehicleId, f64)> = self
            .fleet
            .iter()
            .map(|(id, olev)| (*id, olev.receivable_power().value()))
            .filter(|(_, p)| *p > 1e-9)
            .collect();
        self.stats.replans += 1;
        self.stats.peak_players = self.stats.peak_players.max(players.len());
        if players.is_empty() || self.spans.is_empty() {
            self.allocation.clear();
            return Ok(());
        }
        // The operational grid enforces its safety knee hard (stiff κ):
        // under heavy crowding the scheduled load must stay near η·P_line.
        let mut builder = GameBuilder::new()
            .sections(self.spans.len(), self.config.section_capacity)
            .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
                self.config.beta,
            )))
            .overload(10.0 * self.config.beta / 1000.0)
            .eta(self.config.eta);
        for (_, p_max) in &players {
            builder = builder.olevs(1, Kilowatts::new(*p_max));
        }
        let mut game = builder.build()?;
        game.run(
            UpdateOrder::Random {
                seed: self.config.seed.wrapping_add(self.stats.replans as u64),
            },
            20_000,
        )?;
        let mut fresh = BTreeMap::new();
        for (n, (id, _)) in players.iter().enumerate() {
            fresh.insert(*id, game.schedule().olev_total(OlevId(n)));
        }
        self.allocation = fresh;
        self.stats.revenue += game.total_payment();
        let peak = game
            .section_loads()
            .iter()
            .zip(game.caps())
            .map(|(l, c)| l / c)
            .fold(0.0f64, f64::max);
        self.stats.peak_congestion = self.stats.peak_congestion.max(peak);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oes_traffic::counts::HourlyCounts;
    use oes_traffic::CorridorBuilder;
    use oes_units::{Meters, SectionId};
    use oes_wpt::ChargingSection;

    fn closed_loop(participation: f64, eta: f64) -> ClosedLoop {
        let mut builder = CorridorBuilder::new();
        builder
            .blocks(3, Meters::new(250.0))
            .counts(HourlyCounts::new(vec![500]))
            .seed(4);
        let sim = builder.build();
        let mut cl = ClosedLoop::new(
            sim,
            OlevSpec::chevy_spark_default(),
            ClosedLoopConfig {
                participation,
                eta,
                seed: 4,
                ..ClosedLoopConfig::default()
            },
        );
        for (i, span) in [(0usize, 50.0), (1, 25.0)].iter().enumerate() {
            cl.add_span(ChargingSpan {
                edge: oes_traffic::EdgeId(span.0),
                start: Meters::new(span.1),
                end: Meters::new(span.1 + 200.0),
                section: ChargingSection::paper_default(SectionId(i)),
            });
        }
        cl
    }

    #[test]
    fn closed_loop_transfers_and_collects() {
        let mut cl = closed_loop(0.8, 0.9);
        cl.run_for(Seconds::new(900.0)).unwrap();
        let s = cl.stats();
        assert!(s.energy_transferred > 0.0, "no energy moved");
        assert!(s.revenue > 0.0, "no revenue collected");
        assert!(s.replans >= 29, "replans {}", s.replans);
        assert!(s.peak_players > 0);
    }

    #[test]
    fn game_keeps_scheduled_congestion_near_the_knee() {
        let mut cl = closed_loop(1.0, 0.9);
        cl.run_for(Seconds::new(900.0)).unwrap();
        // However many OLEVs crowd the approach, the stiff overload penalty
        // keeps the *scheduled* load pinned close to the η = 0.9 knee.
        assert!(
            cl.stats().peak_congestion < 1.0,
            "scheduled congestion {}",
            cl.stats().peak_congestion
        );
        assert!(cl.stats().peak_congestion > 0.5, "lane barely used");
    }

    #[test]
    fn zero_participation_means_no_game_activity() {
        let mut cl = closed_loop(0.0, 0.9);
        cl.run_for(Seconds::new(600.0)).unwrap();
        let s = cl.stats();
        assert_eq!(s.energy_transferred, 0.0);
        assert_eq!(s.revenue, 0.0);
        assert_eq!(s.peak_players, 0);
    }

    #[test]
    fn failed_replans_degrade_gracefully() {
        // An invalid grid parameter makes every populated replan fail; the
        // loop must keep running on the standing (empty) allocation and
        // account for the failures instead of aborting.
        let mut builder = CorridorBuilder::new();
        builder
            .blocks(3, Meters::new(250.0))
            .counts(HourlyCounts::new(vec![500]))
            .seed(4);
        let sim = builder.build();
        let mut cl = ClosedLoop::new(
            sim,
            OlevSpec::chevy_spark_default(),
            ClosedLoopConfig {
                participation: 0.8,
                section_capacity: Kilowatts::new(-25.0),
                seed: 4,
                ..ClosedLoopConfig::default()
            },
        );
        cl.add_span(ChargingSpan {
            edge: oes_traffic::EdgeId(0),
            start: Meters::new(50.0),
            end: Meters::new(250.0),
            section: ChargingSection::paper_default(SectionId(0)),
        });
        cl.run_for(Seconds::new(300.0)).unwrap();
        let s = cl.stats();
        assert!(s.failed_replans > 0, "expected failing replans");
        assert!(s.replans >= s.failed_replans);
        assert_eq!(s.energy_transferred, 0.0, "no allocation should ever stand");
        assert!(matches!(
            cl.last_replan_error(),
            Some(oes_game::GameError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut cl = closed_loop(0.6, 0.9);
            cl.run_for(Seconds::new(600.0)).unwrap();
            let s = cl.stats();
            (
                s.energy_transferred.to_bits(),
                s.revenue.to_bits(),
                s.replans,
            )
        };
        assert_eq!(run(), run());
    }
}
