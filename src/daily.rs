//! Day-scale orchestration: the full paper pipeline, hour by hour.
//!
//! Section III of the paper argues in one direction (traffic → load →
//! deficiency → prices) and Section IV prices in the other (prices →
//! requests). This module runs the loop for a whole day:
//!
//! 1. simulate a grid-operator day ([`oes_grid`]) — the hourly LBMP is the
//!    pricing policy's β;
//! 2. derive the hourly OLEV fleet from a traffic-count profile and a
//!    participation rate ([`oes_traffic::counts`]);
//! 3. run one pricing game per hour ([`oes_game`]) with Eq. 1/Eq. 2-derived
//!    capacities;
//! 4. overlay the resulting OLEV energy back onto the grid day
//!    ([`oes_grid::ev_load`]) to quantify the added deficiency and price
//!    pressure the paper warns about.

use oes_game::{GameBuilder, NonlinearPricing, PricingPolicy, UpdateOrder};
use oes_grid::{overlay_ev_load, DaySeries, GridOperator, OperatorConfig};
use oes_traffic::HourlyCounts;
use oes_units::{Kilowatts, MilesPerHour, OlevId, SectionId, StateOfCharge};
use oes_wpt::{ChargingSection, Olev, OlevSpec};

/// Configuration of a day run.
#[derive(Debug, Clone)]
pub struct DailyConfig {
    /// Hourly vehicle counts on the charging corridor.
    pub counts: HourlyCounts,
    /// Fraction of counted vehicles that are charging OLEVs.
    pub participation: f64,
    /// Prevailing corridor velocity (drives Eq. 1 capacity).
    pub velocity_mph: f64,
    /// Number of charging sections.
    pub sections: usize,
    /// Vehicle passes per hour scaling Eq. 1 into sustained capacity.
    pub passes_per_hour: f64,
    /// Safety factor η of Eq. 4.
    pub eta: f64,
    /// Log-satisfaction weight of the OLEVs.
    pub satisfaction_weight: f64,
    /// Grid-operator and game seed.
    pub seed: u64,
    /// Cap on OLEVs per hourly game (keeps the largest hours tractable).
    pub max_fleet_per_hour: usize,
}

impl Default for DailyConfig {
    fn default() -> Self {
        Self {
            counts: HourlyCounts::nyc_arterial_like(700, 0),
            participation: 0.1,
            velocity_mph: 60.0,
            sections: 50,
            passes_per_hour: 170.0,
            eta: 0.9,
            satisfaction_weight: 1.0,
            seed: 42,
            max_fleet_per_hour: 120,
        }
    }
}

/// One hour of the day run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HourOutcome {
    /// Hour of day.
    pub hour: usize,
    /// OLEVs that played this hour's game.
    pub olevs: usize,
    /// The LBMP used as β, $/MWh.
    pub beta: f64,
    /// Social welfare at equilibrium.
    pub welfare: f64,
    /// System congestion degree at equilibrium.
    pub congestion: f64,
    /// Average unit payment, $/MWh.
    pub unit_payment: f64,
    /// Energy transferred this hour, MWh.
    pub energy_mwh: f64,
    /// Grid revenue this hour, $.
    pub revenue: f64,
}

/// The full day: per-hour outcomes plus the grid day before and after the
/// OLEV load overlay.
#[derive(Debug, Clone)]
pub struct DailyReport {
    /// One entry per hour.
    pub hours: Vec<HourOutcome>,
    /// The operator's day without OLEVs.
    pub grid_base: DaySeries,
    /// The same day re-priced with the OLEV load added.
    pub grid_with_olevs: DaySeries,
}

impl DailyReport {
    /// Total energy transferred over the day, MWh.
    #[must_use]
    pub fn total_energy_mwh(&self) -> f64 {
        self.hours.iter().map(|h| h.energy_mwh).sum()
    }

    /// Total grid revenue over the day, $.
    #[must_use]
    pub fn total_revenue(&self) -> f64 {
        self.hours.iter().map(|h| h.revenue).sum()
    }

    /// How much the OLEV overlay raised the day's peak absolute deficiency.
    #[must_use]
    pub fn added_peak_deficiency_mwh(&self) -> f64 {
        self.grid_with_olevs.max_abs_deficiency().value()
            - self.grid_base.max_abs_deficiency().value()
    }
}

/// Runs the full pipeline for one day.
///
/// # Errors
///
/// Propagates [`oes_game::GameError`] from any hourly game.
pub fn run_day(config: &DailyConfig) -> Result<DailyReport, oes_game::GameError> {
    let operator_config = OperatorConfig::nyiso_like();
    let grid_base = GridOperator::new(operator_config.clone(), config.seed).simulate_day();

    let velocity = MilesPerHour::new(config.velocity_mph).to_meters_per_second();
    let section = ChargingSection::paper_default(SectionId(0));
    let cap = section.sustained_capacity(velocity, config.passes_per_hour);
    let p_max = Olev::new(
        OlevId(0),
        OlevSpec::chevy_spark_default(),
        StateOfCharge::saturating(0.4),
        StateOfCharge::saturating(0.9),
    )
    .receivable_power();

    let mut hours = Vec::with_capacity(24);
    let mut ev_hourly_mwh = vec![0.0; 24];
    #[allow(clippy::needless_range_loop)] // hour indexes two things at once
    for hour in 0..24 {
        let fleet = ((f64::from(config.counts.at(hour)) * config.participation).round() as usize)
            .min(config.max_fleet_per_hour);
        let beta = grid_base.at_hour(hour as f64 + 0.5).lbmp.value();
        if fleet == 0 {
            hours.push(HourOutcome {
                hour,
                olevs: 0,
                beta,
                welfare: 0.0,
                congestion: 0.0,
                unit_payment: 0.0,
                energy_mwh: 0.0,
                revenue: 0.0,
            });
            continue;
        }
        let mut game = GameBuilder::new()
            .sections(config.sections, Kilowatts::new(cap.value()))
            .olevs_weighted(
                fleet,
                Kilowatts::new(p_max.value()),
                config.satisfaction_weight,
            )
            .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
                beta,
            )))
            .eta(config.eta)
            .build()?;
        game.run(
            UpdateOrder::Random {
                seed: config.seed.wrapping_add(hour as u64),
            },
            30_000,
        )?;
        // Power sustained for the hour = energy in kWh numerically.
        let energy_mwh = game.schedule().total() / 1000.0;
        ev_hourly_mwh[hour] = energy_mwh;
        hours.push(HourOutcome {
            hour,
            olevs: fleet,
            beta,
            welfare: game.welfare(),
            congestion: game.system_congestion(),
            unit_payment: game.unit_payment_dollars_per_mwh(),
            energy_mwh,
            revenue: game.total_payment(),
        });
    }
    let grid_with_olevs = overlay_ev_load(&grid_base, &ev_hourly_mwh, &operator_config);
    Ok(DailyReport {
        hours,
        grid_base,
        grid_with_olevs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DailyConfig {
        DailyConfig {
            counts: HourlyCounts::new(vec![40, 400, 40, 0]),
            participation: 0.25,
            sections: 10,
            max_fleet_per_hour: 30,
            ..DailyConfig::default()
        }
    }

    #[test]
    fn day_runs_and_accounts() {
        let report = run_day(&small_config()).unwrap();
        assert_eq!(report.hours.len(), 24);
        assert!(report.total_energy_mwh() > 0.0);
        assert!(report.total_revenue() > 0.0);
        // The zero-count hour plays no game (profile wraps every 4 hours).
        assert_eq!(report.hours[3].olevs, 0);
        assert_eq!(report.hours[3].energy_mwh, 0.0);
    }

    #[test]
    fn busier_hours_move_more_energy() {
        let report = run_day(&small_config()).unwrap();
        // Hour 1 (400 vehicles) vs hour 0 (40 vehicles).
        assert!(report.hours[1].olevs > report.hours[0].olevs);
        assert!(report.hours[1].energy_mwh > report.hours[0].energy_mwh);
    }

    #[test]
    fn overlay_feeds_back_into_the_grid_day() {
        let report = run_day(&small_config()).unwrap();
        // OLEV load must not lower any price and must raise some deficiency.
        let raised = report
            .grid_base
            .points()
            .iter()
            .zip(report.grid_with_olevs.points())
            .any(|(a, b)| b.deficiency > a.deficiency);
        assert!(raised);
        assert!(
            report.grid_with_olevs.max_abs_deficiency() >= report.grid_base.max_abs_deficiency()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_day(&small_config()).unwrap();
        let b = run_day(&small_config()).unwrap();
        assert_eq!(a.hours, b.hours);
    }
}
