//! # OES — Opportunistic Energy Sharing
//!
//! A full reproduction of *"Opportunistic Energy Sharing Between Power Grid
//! and Electric Vehicles: A Game Theory-Based Pricing Policy"* (Sarker, Li,
//! Kolodzey, Shen — ICDCS 2017) as a Rust workspace.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`units`] — typed physical quantities and identifiers.
//! - [`traffic`] — a SUMO-substitute microscopic traffic simulator.
//! - [`grid`] — a NYISO-substitute power-market simulator.
//! - [`wpt`] — the wireless power transfer substrate (sections, batteries,
//!   OLEVs, intersection times, V2I, placement).
//! - [`game`] — the paper's core contribution: the game-theoretic pricing
//!   policy and its decentralized best-response engine.
//! - [`service`] — the pricing game as a long-running networked
//!   coordinator: sessions over TCP/Unix sockets, deadlines, backpressure,
//!   and a seeded chaos proxy for fault injection.
//! - [`telemetry`] — structured tracing, deterministic metrics, and JSONL
//!   run journals instrumenting every layer above.
//!
//! # Quickstart
//!
//! Build a small scenario and run the pricing game to convergence:
//!
//! ```
//! use oes::game::{GameBuilder, NonlinearPricing, PricingPolicy, UpdateOrder};
//! use oes::units::Kilowatts;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut game = GameBuilder::new()
//!     .sections(10, Kilowatts::new(60.0))
//!     .olevs(5, Kilowatts::new(40.0))
//!     .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)))
//!     .build()?;
//! let outcome = game.run(UpdateOrder::RoundRobin, 500)?;
//! assert!(outcome.converged());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod closed_loop;
pub mod daily;

pub use oes_game as game;
pub use oes_grid as grid;
pub use oes_service as service;
pub use oes_telemetry as telemetry;
pub use oes_traffic as traffic;
pub use oes_units as units;
pub use oes_wpt as wpt;
