//! Charging while driving, end to end: a two-lane signalized corridor where
//! a fraction of vehicles are OLEVs whose batteries drain with the
//! microscopic speed trace and recharge over an energized span before the
//! first traffic light.
//!
//! ```sh
//! cargo run --release --example charging_lane
//! ```

use oes::traffic::{CorridorBuilder, EnergyModel, HourlyCounts};
use oes::units::{Meters, Seconds, SectionId, StateOfCharge};
use oes::wpt::{ChargingSection, ChargingSpan, CoSimulation, OlevSpec};

fn main() {
    let mut builder = CorridorBuilder::new();
    builder
        .blocks(4, Meters::new(250.0))
        .lanes(2)
        .counts(HourlyCounts::nyc_arterial_like(650, 21))
        .seed(21);
    let sim = builder.build();

    let mut co = CoSimulation::new(
        sim,
        EnergyModel::chevy_spark_ev(),
        OlevSpec::chevy_spark_default(),
        0.4, // 40% of vehicles participate
        StateOfCharge::saturating(0.5),
        21,
    );
    // A 200 m span ending at the first stop line — where the queues dwell.
    co.add_span(ChargingSpan {
        edge: oes::traffic::EdgeId(0),
        start: Meters::new(50.0),
        end: Meters::new(250.0),
        section: ChargingSection::paper_default(SectionId(0)),
    });

    for hour in 0..3 {
        co.run_for(Seconds::new(3600.0));
        println!(
            "hour {hour}: {:6} vehicles through, {:4} OLEVs active, {:7.1} kWh transferred, mean SOC {:.3}",
            co.traffic().exited(),
            co.active_olevs(),
            co.received_per_hour().at(hour),
            co.mean_soc().map_or(f64::NAN, |s| s.fraction()),
        );
    }

    let trips = co.completed_trips();
    let gained = trips.iter().filter(|t| t.soc_end > t.soc_start).count();
    let avg_received: f64 =
        trips.iter().map(|t| t.received.value()).sum::<f64>() / trips.len().max(1) as f64;
    let avg_drained: f64 =
        trips.iter().map(|t| t.drained.value()).sum::<f64>() / trips.len().max(1) as f64;
    println!();
    println!("completed OLEV trips : {}", trips.len());
    println!(
        "trips that gained SOC: {gained} ({:.0}%)",
        100.0 * gained as f64 / trips.len().max(1) as f64
    );
    println!("avg received per trip: {avg_received:.3} kWh");
    println!("avg drained per trip : {avg_drained:.3} kWh");
    println!(
        "total grid energy    : {:.1} kWh",
        co.total_received().value()
    );
}
