//! Charging-section placement (the paper's future-work item): measure dwell
//! at candidate spans along a signalized corridor, then pick a deployment
//! under an installation budget and compare against naive placements.
//!
//! ```sh
//! cargo run --release --example placement_planning
//! ```

use oes::traffic::{CorridorBuilder, HourlyCounts, SectionPlacement, SpanDetector};
use oes::units::{Meters, Seconds};
use oes::wpt::{greedy_placement, PlacementCandidate};

fn main() {
    // A five-block corridor; candidate 100 m spans tile every block.
    let blocks = 5usize;
    let block_len = 250.0;
    let span_len = 100.0;
    let mut builder = CorridorBuilder::new();
    builder
        .blocks(blocks, Meters::new(block_len))
        .counts(HourlyCounts::nyc_arterial_like(650, 5))
        .detector(SectionPlacement::BeforeLight, Meters::new(span_len))
        .seed(5);
    let mut sim = builder.build();
    // Tile extra candidate detectors across every block.
    let spans_per_block = (block_len / span_len) as usize;
    for b in 0..blocks {
        for s in 0..spans_per_block {
            let start = s as f64 * span_len;
            sim.add_detector(SpanDetector::new(
                format!("block {b} span {s}"),
                oes::traffic::EdgeId(b),
                Meters::new(start),
                Meters::new(start + span_len),
            ));
        }
        // One stop-line-anchored candidate per block: red-phase queues live
        // in the last meters before the light.
        sim.add_detector(SpanDetector::new(
            format!("block {b} stop-line"),
            oes::traffic::EdgeId(b),
            Meters::new(block_len - span_len),
            Meters::new(block_len),
        ));
    }
    sim.run_for(Seconds::new(6.0 * 3600.0));

    // Turn the measured dwell into placement candidates (skip detector 0,
    // the builder's own).
    let candidates: Vec<PlacementCandidate> = sim.detectors()[1..]
        .iter()
        .map(|d| PlacementCandidate {
            label: d.label.clone(),
            edge: d.edge().0,
            start: d.span().0,
            end: d.span().1,
            dwell: d.total_occupancy(),
        })
        .collect();

    let budget = Meters::new(300.0);
    let plan = greedy_placement(&candidates, budget);
    println!("measured {} candidate spans over 6 h", candidates.len());
    println!("\ngreedy plan under a {budget} budget:");
    for c in &plan.chosen {
        println!(
            "  {:18} [{:5.0} m..{:5.0} m]  dwell {:8.1} min",
            c.label,
            c.start.value(),
            c.end.value(),
            c.dwell.to_minutes()
        );
    }
    println!(
        "  -> captured dwell {:.1} min",
        plan.total_dwell().to_minutes()
    );

    // Baselines: uniform spacing and the worst-case (least-dwell) picks.
    let k = plan.chosen.len().max(1);
    let uniform: f64 = candidates
        .iter()
        .step_by((candidates.len() / k).max(1))
        .take(k)
        .map(|c| c.dwell.value())
        .sum();
    let mut sorted = candidates.clone();
    sorted.sort_by(|a, b| a.dwell.partial_cmp(&b.dwell).expect("finite dwell"));
    let worst: f64 = sorted.iter().take(k).map(|c| c.dwell.value()).sum();
    println!("\nbaselines with the same number of spans:");
    println!("  uniform spacing : {:8.1} min", uniform / 60.0);
    println!("  worst placement : {:8.1} min", worst / 60.0);
    println!(
        "\ngreedy beats uniform by {:.1}x and worst-case by {:.1}x",
        plan.total_dwell().value() / uniform.max(1e-9),
        plan.total_dwell().value() / worst.max(1e-9)
    );
}
