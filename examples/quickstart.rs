//! Quickstart: build a small WPT pricing game and run it to the socially
//! optimal power schedule.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use oes::game::{
    DistributedGame, GameBuilder, NonlinearPricing, ParallelConfig, PricingPolicy, UpdateOrder,
};
use oes::units::Kilowatts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A charging lane with 20 sections of 60 kW, 8 OLEVs that can each
    // accept up to 50 kW, priced with the paper's nonlinear policy at an
    // LBMP of $15/MWh.
    let mut game = GameBuilder::new()
        .sections(20, Kilowatts::new(60.0))
        .olevs(8, Kilowatts::new(50.0))
        .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
            15.0,
        )))
        .eta(0.9)
        .build()?;

    // Run the asynchronous best-response game (Section IV.D).
    let outcome = game.run(UpdateOrder::RoundRobin, 2_000)?;
    println!("converged            : {}", outcome.converged());
    println!("updates              : {}", outcome.updates());
    println!("social welfare       : {:.4}", game.welfare());
    println!("system congestion    : {:.4}", game.system_congestion());
    println!("total payment ($)    : {:.6}", game.total_payment());
    println!(
        "unit payment ($/MWh) : {:.2}",
        game.unit_payment_dollars_per_mwh()
    );

    // The nonlinear policy load-balances: every section carries the same
    // load at equilibrium.
    let loads = game.section_loads();
    let (min, max) = loads
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &l| {
            (lo.min(l), hi.max(l))
        });
    println!(
        "section loads (kW)   : {min:.4} .. {max:.4} (spread {:.2e})",
        max - min
    );

    // The same protocol over real threads (one per OLEV) reaches the same
    // equilibrium — the decentralized runtime of Section IV.D.
    let mut game2 = GameBuilder::new()
        .sections(20, Kilowatts::new(60.0))
        .olevs(8, Kilowatts::new(50.0))
        .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
            15.0,
        )))
        .eta(0.9)
        .build()?;
    let distributed = DistributedGame::new(&mut game2).run(2_000)?;
    println!(
        "distributed runtime  : converged={} welfare={:.4} (Δ={:.2e})",
        distributed.converged(),
        game2.welfare(),
        (game.welfare() - game2.welfare()).abs()
    );

    // Deterministic parallel sweeps: 4 worker shards compute best responses
    // against frozen load snapshots, applied in a fixed sweep order — same
    // seed, same bits, same equilibrium at any thread count.
    let mut game3 = GameBuilder::new()
        .sections(20, Kilowatts::new(60.0))
        .olevs(8, Kilowatts::new(50.0))
        .pricing(PricingPolicy::Nonlinear(NonlinearPricing::paper_default(
            15.0,
        )))
        .eta(0.9)
        .build()?;
    let parallel = game3.run_parallel(UpdateOrder::RoundRobin, 2_000, ParallelConfig::new(4))?;
    println!(
        "parallel sweeps (K=4): converged={} welfare={:.4} (Δ={:.2e})",
        parallel.converged(),
        game3.welfare(),
        (game.welfare() - game3.welfare()).abs()
    );
    Ok(())
}
