//! The paper's motivating study (Section III, Fig. 3) end to end: a
//! signalized Brooklyn-style arterial, diurnal traffic, and the intersection
//! time / receivable energy of a 200 m charging section placed at a traffic
//! light vs mid-block.
//!
//! ```sh
//! cargo run --release --example flatlands_avenue
//! ```

use oes::traffic::HourlyCounts;
use oes::units::{Kilowatts, Meters};
use oes::wpt::IntersectionStudy;

fn main() {
    let report = IntersectionStudy::new()
        .counts(HourlyCounts::nyc_arterial_like(700, 31))
        .section_length(Meters::new(200.0))
        .section_power(Kilowatts::new(100.0))
        .hours(24)
        .seed(31)
        .run();

    println!(
        "Flatlands-Avenue-like corridor, 24 h, {} vehicles",
        report.vehicles_entered
    );
    println!();
    println!("hour | intersection time (min)      | receivable energy (kWh)");
    println!("     | at light      at middle      | at light      at middle");
    println!("-----+------------------------------+------------------------");
    for h in 0..24 {
        println!(
            "{h:4} | {:9.1}  {:12.1}    | {:9.1}  {:12.1}",
            report.at_light.dwell[h].to_minutes(),
            report.at_middle.dwell[h].to_minutes(),
            report.at_light.energy[h].value(),
            report.at_middle.energy[h].value(),
        );
    }
    println!();
    println!(
        "total intersection time: {:.1} h at light, {:.1} h at middle",
        report.at_light.total_dwell().to_hours().value(),
        report.at_middle.total_dwell().to_hours().value(),
    );
    println!(
        "total receivable energy: {:.0} kWh at light, {:.0} kWh at middle",
        report.at_light.total_energy().value(),
        report.at_middle.total_energy().value(),
    );
    println!();
    println!(
        "placement before the light captures {:.1}x the energy of mid-block",
        report.at_light.total_energy().value() / report.at_middle.total_energy().value().max(1e-9)
    );
}
