//! Signal timing meets charging: Webster-optimize an intersection's splits,
//! drive the corridor with them, and see how the timing shapes the dwell a
//! stop-line charging section can harvest.
//!
//! ```sh
//! cargo run --release --example webster_signals
//! ```

use oes::traffic::{webster_timing, CorridorBuilder, HourlyCounts, PhaseDemand, SectionPlacement};
use oes::units::{Meters, Seconds};

fn dwell_with_signal(green: Seconds, red: Seconds) -> (f64, u64) {
    let mut builder = CorridorBuilder::new();
    builder
        .blocks(3, Meters::new(250.0))
        .signal(green, red)
        .detector(SectionPlacement::BeforeLight, Meters::new(200.0))
        .counts(HourlyCounts::new(vec![650]))
        .seed(11);
    let mut sim = builder.build();
    sim.run_for(Seconds::new(3600.0));
    (
        sim.detectors()[0].total_occupancy().to_minutes(),
        sim.exited(),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The corridor's through movement vs a nominal cross street.
    let phases = [
        PhaseDemand {
            flow: 650.0,
            saturation_flow: 1800.0,
        },
        PhaseDemand {
            flow: 400.0,
            saturation_flow: 1800.0,
        },
    ];
    let timing = webster_timing(&phases, Seconds::new(4.0))?;
    println!(
        "Webster: cycle {:.1}s, corridor green {:.1}s, cross green {:.1}s",
        timing.cycle.value(),
        timing.greens[0].value(),
        timing.greens[1].value()
    );

    let corridor_green = timing.greens[0];
    let corridor_red = timing.cycle - corridor_green;
    let (dwell_opt, exits_opt) = dwell_with_signal(corridor_green, corridor_red);
    // A deliberately bad fixed plan: starve the corridor.
    let (dwell_bad, exits_bad) = dwell_with_signal(Seconds::new(15.0), Seconds::new(65.0));

    println!();
    println!("plan            | dwell on section (min/h) | vehicles through");
    println!("----------------+--------------------------+-----------------");
    println!("webster         | {dwell_opt:24.1} | {exits_opt}");
    println!("starved (15/65) | {dwell_bad:24.1} | {exits_bad}");
    println!();
    println!("The starved plan harvests more charging dwell (longer queues) but");
    println!("moves fewer vehicles — the exact trade-off the paper's future work");
    println!("raises for placing charging sections at traffic lights.");
    Ok(())
}
