//! Path planning under charging-lane pricing (the paper's future-work
//! extension): a fleet splits between a priced charging route and a plain
//! route; the nonlinear pricing policy makes the split self-limiting.
//!
//! ```sh
//! cargo run --release --example route_choice
//! ```

use oes::game::{NonlinearPricing, PricingPolicy, RouteChoice, RouteOption, RoutingEconomics};
use oes::units::Kilowatts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("fleet of 40 OLEVs; charging route adds a detour over the plain route\n");
    println!(
        "detour (min) | on charging route | on plain route | lane congestion | marginal benefit $"
    );
    println!(
        "-------------+-------------------+----------------+-----------------+-------------------"
    );
    for detour_minutes in [0.0, 3.0, 6.0, 12.0, 24.0, 48.0] {
        let study = RouteChoice {
            charging_route: RouteOption {
                travel_hours: 0.5 + detour_minutes / 60.0,
                charging_sections: 12,
            },
            plain_route: RouteOption {
                travel_hours: 0.5,
                charging_sections: 0,
            },
            fleet: 40,
            section_capacity: Kilowatts::new(35.0),
            olev_p_max: Kilowatts::new(60.0),
            policy: PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
            economics: RoutingEconomics::default(),
        };
        let eq = study.equilibrium()?;
        println!(
            "{detour_minutes:12.0} | {:17} | {:14} | {:15.3} | {:+18.2}",
            eq.on_charging_route, eq.on_plain_route, eq.lane_congestion, eq.marginal_benefit
        );
    }
    println!();
    println!("A longer detour peels OLEVs off the charging lane; the pricing policy");
    println!("keeps the lane's congestion bounded even when the detour is free.");
    Ok(())
}
