//! One day of the simulated NYISO-like grid operator (the Section III
//! background study, Fig. 2): load vs forecast, deficiency, LBMP, and
//! ancillary prices, hour by hour.
//!
//! ```sh
//! cargo run --example grid_day
//! ```

use oes::grid::{ControlPeriod, GridOperator, OperatorConfig};
use oes::units::{MegawattHours, Megawatts};

fn main() {
    let operator = GridOperator::new(OperatorConfig::nyiso_like(), 42);
    let day = operator.simulate_day();

    println!("hour | load (MWh) forecast  deficiency | LBMP $/MWh | anc. mean | period");
    println!("-----+----------------------------------+------------+-----------+----------------");
    for h in 0..24 {
        let p = day.at_hour(h as f64 + 0.5);
        let period = ControlPeriod::classify(
            p.integrated_load / oes::units::Hours::new(1.0),
            Megawatts::new(4500.0),
            p.deficiency,
            MegawattHours::new(60.0),
        );
        println!(
            "{h:4} | {:9.1} {:9.1} {:+10.1} | {:10.2} | {:9.2} | {period}",
            p.integrated_load.value(),
            p.forecast_load.value(),
            p.deficiency.value(),
            p.lbmp.value(),
            p.ancillary.mean().value(),
        );
    }
    println!();
    println!(
        "load band            : {:.1} .. {:.1} MWh   (paper: 4017.1 .. 6657.8)",
        day.min_integrated_load().value(),
        day.max_integrated_load().value()
    );
    println!(
        "max |deficiency|     : {:.1} MWh            (paper: up to 167.8)",
        day.max_abs_deficiency().value()
    );
    let (lo, hi) = day.lbmp_range();
    println!(
        "LBMP range           : {:.2} .. {:.2} $/MWh (paper: 12.52 .. 244.04)",
        lo.value(),
        hi.value()
    );
    println!(
        "mean ancillary price : {:.2} $/MW           (paper: 13.41)",
        day.mean_ancillary_price().value()
    );
}
