//! A full day of opportunistic energy sharing: hourly traffic drives hourly
//! pricing games whose β follows the grid's LBMP, and the resulting OLEV
//! load is fed back into the grid day — the paper's Sections III and IV
//! running as one loop.
//!
//! ```sh
//! cargo run --release --example day_in_the_life
//! ```

use oes::daily::{run_day, DailyConfig};
use oes::traffic::HourlyCounts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = DailyConfig {
        counts: HourlyCounts::nyc_arterial_like(700, 7),
        participation: 0.12,
        sections: 50,
        ..DailyConfig::default()
    };
    let report = run_day(&config)?;

    println!("hour | OLEVs | beta $/MWh | congestion | $/MWh paid | energy MWh | revenue $");
    println!("-----+-------+------------+------------+------------+------------+----------");
    for h in &report.hours {
        println!(
            "{:4} | {:5} | {:10.2} | {:10.3} | {:10.2} | {:10.3} | {:9.2}",
            h.hour, h.olevs, h.beta, h.congestion, h.unit_payment, h.energy_mwh, h.revenue
        );
    }
    println!();
    println!(
        "daily energy to OLEVs : {:.2} MWh",
        report.total_energy_mwh()
    );
    println!("daily grid revenue    : ${:.2}", report.total_revenue());
    println!(
        "peak |deficiency|     : {:.1} -> {:.1} MWh once the (unforecast) OLEV load lands",
        report.grid_base.max_abs_deficiency().value(),
        report.grid_with_olevs.max_abs_deficiency().value(),
    );
    let (base_lo, base_hi) = report.grid_base.lbmp_range();
    let (ev_lo, ev_hi) = report.grid_with_olevs.lbmp_range();
    println!(
        "LBMP range            : {:.2}..{:.2} -> {:.2}..{:.2} $/MWh",
        base_lo.value(),
        base_hi.value(),
        ev_lo.value(),
        ev_hi.value()
    );
    Ok(())
}
