//! Nonlinear vs linear pricing on the same WPT scenario (the Section V
//! comparison): payments, load balance, and welfare side by side, with the
//! grid's β taken from a simulated NYISO day.
//!
//! ```sh
//! cargo run --release --example pricing_comparison
//! ```

use oes::game::{GameBuilder, LinearPricing, NonlinearPricing, PricingPolicy, UpdateOrder};
use oes::grid::{GridOperator, OperatorConfig};
use oes::units::Kilowatts;

fn run(policy: PricingPolicy, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut game = GameBuilder::new()
        .sections(30, Kilowatts::new(60.0))
        .olevs_weighted(20, Kilowatts::new(70.0), 3.0)
        .pricing(policy)
        .eta(0.9)
        .build()?;
    let outcome = game.run(UpdateOrder::Random { seed: 7 }, 10_000)?;
    let loads = game.section_loads();
    let (min, max) = loads
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &l| {
            (lo.min(l), hi.max(l))
        });
    println!("--- {label} ---");
    println!(
        "converged            : {} in {} updates",
        outcome.converged(),
        outcome.updates()
    );
    println!("congestion degree    : {:.3}", game.system_congestion());
    println!("social welfare       : {:.3}", game.welfare());
    println!(
        "unit payment ($/MWh) : {:.2}",
        game.unit_payment_dollars_per_mwh()
    );
    println!("section load spread  : {min:.2} .. {max:.2} kW");
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // β comes from the simulated grid operator: the LBMP at the evening peak
    // (the paper sets β to the NYISO LBMP).
    let day = GridOperator::new(OperatorConfig::nyiso_like(), 42).simulate_day();
    let beta = day.at_hour(7.0).lbmp.value();
    println!("simulated NYISO day: LBMP at 07:00 = ${beta:.2}/MWh (used as β)\n");

    run(
        PricingPolicy::Nonlinear(NonlinearPricing::paper_default(beta)),
        "nonlinear pricing (the paper's policy)",
    )?;
    run(
        PricingPolicy::Linear(LinearPricing::paper_default(beta)),
        "linear pricing (baseline)",
    )?;

    println!("The nonlinear policy balances section loads (tiny spread) and its");
    println!("unit payment tracks congestion; the linear baseline fills sections");
    println!("greedily (wide spread) at a flat unit price.");
    Ok(())
}
