//! What is the pricing mechanism worth? Four regimes on one scenario —
//! centralized optimum, the paper's nonlinear game, the linear baseline,
//! and a free-for-all with no pricing — followed by the temporal view: the
//! game repeated as the fleet's batteries fill.
//!
//! ```sh
//! cargo run --release --example mechanism_value
//! ```

use oes::game::{
    compare_regimes, uniform_fleet, ComparisonScenario, NonlinearPricing, PricingPolicy,
    SocCoupledGame,
};
use oes::units::{Kilowatts, StateOfCharge};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four regimes, one physical lane.
    let scenario = ComparisonScenario::default();
    let cmp = compare_regimes(&scenario)?;
    println!("regime        |   welfare | congestion | load spread kW");
    println!("--------------+-----------+------------+---------------");
    for (name, r) in [
        ("centralized", cmp.centralized),
        ("nonlinear", cmp.nonlinear),
        ("linear", cmp.linear),
        ("free-for-all", cmp.free_for_all),
    ] {
        println!(
            "{name:13} | {:9.3} | {:10.3} | {:13.3}",
            r.welfare, r.congestion, r.load_spread
        );
    }
    println!();
    println!(
        "price-of-anarchy gap : {:.2e} (Theorem IV.1, measured)",
        cmp.price_of_anarchy_gap()
    );
    println!(
        "mechanism value      : {:+.3} welfare vs free-for-all",
        cmp.mechanism_value()
    );

    // The temporal view: demand decays as SOC rises.
    println!("\n--- the game repeated while batteries fill (3-minute rounds) ---");
    let fleet = uniform_fleet(
        10,
        StateOfCharge::saturating(0.35),
        StateOfCharge::saturating(0.9),
    );
    let mut dynamics = SocCoupledGame::new(
        fleet,
        12,
        Kilowatts::new(30.0),
        PricingPolicy::Nonlinear(NonlinearPricing::paper_default(15.0)),
        0.9,
        0.05,
        3,
    );
    println!("round | demand bound kW | power kW | congestion | mean SOC");
    for outcome in dynamics.run(16)? {
        if outcome.round % 2 == 0 {
            println!(
                "{:5} | {:15.1} | {:8.1} | {:10.3} | {:8.3}",
                outcome.round,
                outcome.total_demand_bound,
                outcome.total_power,
                outcome.congestion,
                outcome.mean_soc
            );
        }
    }
    println!("\nAs the fleet charges, Eq. 2 bounds shrink, requests fall, and the");
    println!("lane's congestion relaxes without any extra control action.");
    Ok(())
}
